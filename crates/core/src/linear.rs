//! The canonical arithmetic form used by global reassociation (§2.2).
//!
//! "The canonical form of an arithmetic expression is a sum of products of
//! values, where sums and products are represented by ordered lists." A
//! [`LinearExpr`] is `constant + Σ coeffᵢ·Πⱼ factorᵢⱼ`:
//!
//! - factors within a product are ordered by increasing rank (constants
//!   would be rank 0, but constants are folded into the coefficient);
//! - terms are ordered by their factor lists, so that "values and products
//!   of values that differ only in sign are treated as equal when ordering
//!   lists" — the sign lives in the coefficient, which the ordering
//!   ignores;
//! - coefficients use wrapping arithmetic, matching the IR semantics, so
//!   reassociation is sound even at the i64 boundaries.
//!
//! Forward propagation is cancelled when an expression grows beyond the
//! configured operand limit (§2.2 footnote 4); see [`LinearExpr::size`].

use pgvn_ir::Value;

/// One product term: `coeff · factors[0] · factors[1] · …`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term {
    /// The factor list, sorted by `(rank, value index)`; may repeat a
    /// value (powers).
    pub factors: Vec<Value>,
    /// The wrapping integer coefficient.
    pub coeff: i64,
}

/// A linear combination in canonical form.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinearExpr {
    /// Terms ordered by factor list; no term has `coeff == 0` or an empty
    /// factor list (the constant lives in `constant`).
    pub terms: Vec<Term>,
    /// The constant part.
    pub constant: i64,
}

impl LinearExpr {
    /// The constant `c`.
    pub fn from_const(c: i64) -> Self {
        LinearExpr { terms: Vec::new(), constant: c }
    }

    /// The single value `v` (coefficient 1).
    pub fn from_value(v: Value) -> Self {
        LinearExpr { terms: vec![Term { factors: vec![v], coeff: 1 }], constant: 0 }
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    /// Returns `Some(v)` if the expression is exactly `1·v`.
    pub fn as_single_value(&self) -> Option<Value> {
        match (&self.terms[..], self.constant) {
            ([t], 0) if t.coeff == 1 && t.factors.len() == 1 => Some(t.factors[0]),
            _ => None,
        }
    }

    /// The size used against the forward-propagation limit: total number
    /// of factors across terms, plus one per term.
    pub fn size(&self) -> usize {
        self.terms.iter().map(|t| t.factors.len() + 1).sum()
    }

    /// Normalizes: merges equal factor lists, drops zero coefficients,
    /// sorts terms. Factor lists inside terms must already be sorted.
    fn normalize(mut self) -> Self {
        self.terms.sort();
        let mut out: Vec<Term> = Vec::with_capacity(self.terms.len());
        for t in self.terms {
            if let Some(last) = out.last_mut() {
                if last.factors == t.factors {
                    last.coeff = last.coeff.wrapping_add(t.coeff);
                    continue;
                }
            }
            out.push(t);
        }
        out.retain(|t| t.coeff != 0);
        LinearExpr { terms: out, constant: self.constant }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinearExpr) -> LinearExpr {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        LinearExpr { terms, constant: self.constant.wrapping_add(other.constant) }.normalize()
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinearExpr) -> LinearExpr {
        self.add(&other.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> LinearExpr {
        LinearExpr {
            terms: self
                .terms
                .iter()
                .map(|t| Term { factors: t.factors.clone(), coeff: t.coeff.wrapping_neg() })
                .collect(),
            constant: self.constant.wrapping_neg(),
        }
    }

    /// `self · k`.
    pub fn scale(&self, k: i64) -> LinearExpr {
        if k == 0 {
            return LinearExpr::from_const(0);
        }
        LinearExpr {
            terms: self
                .terms
                .iter()
                .map(|t| Term { factors: t.factors.clone(), coeff: t.coeff.wrapping_mul(k) })
                .collect(),
            constant: self.constant.wrapping_mul(k),
        }
        .normalize()
    }

    /// `self · other`, distributing multiplication over addition. The
    /// factor lists of product terms are re-sorted with `rank`.
    pub fn mul(&self, other: &LinearExpr, rank: &dyn Fn(Value) -> u32) -> LinearExpr {
        let mut acc = LinearExpr::from_const(self.constant.wrapping_mul(other.constant));
        // constant × other.terms and self.terms × constant
        for t in &other.terms {
            acc.terms.push(Term {
                factors: t.factors.clone(),
                coeff: t.coeff.wrapping_mul(self.constant),
            });
        }
        for t in &self.terms {
            acc.terms.push(Term {
                factors: t.factors.clone(),
                coeff: t.coeff.wrapping_mul(other.constant),
            });
        }
        for a in &self.terms {
            for b in &other.terms {
                let mut factors = a.factors.clone();
                factors.extend(b.factors.iter().copied());
                factors.sort_by_key(|&v| (rank(v), v));
                acc.terms.push(Term { factors, coeff: a.coeff.wrapping_mul(b.coeff) });
            }
        }
        acc.normalize()
    }

    /// Evaluates the expression under a concrete assignment of values.
    /// Used by tests to check reassociation against direct evaluation.
    pub fn eval(&self, assign: &dyn Fn(Value) -> i64) -> i64 {
        let mut total = self.constant;
        for t in &self.terms {
            let mut p = t.coeff;
            for &f in &t.factors {
                p = p.wrapping_mul(assign(f));
            }
            total = total.wrapping_add(p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgvn_ir::EntityRef;

    fn v(i: usize) -> Value {
        Value::new(i)
    }

    fn id_rank(x: Value) -> u32 {
        x.index() as u32
    }

    #[test]
    fn constants_fold() {
        let a = LinearExpr::from_const(3);
        let b = LinearExpr::from_const(4);
        assert_eq!(a.add(&b).as_const(), Some(7));
        assert_eq!(a.sub(&b).as_const(), Some(-1));
        assert_eq!(a.mul(&b, &id_rank).as_const(), Some(12));
        assert_eq!(a.neg().as_const(), Some(-3));
    }

    #[test]
    fn x_plus_y_commutes() {
        let x = LinearExpr::from_value(v(2));
        let y = LinearExpr::from_value(v(1));
        assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn x_minus_x_is_zero() {
        let x = LinearExpr::from_value(v(1));
        assert_eq!(x.sub(&x).as_const(), Some(0));
    }

    #[test]
    fn addition_is_associative() {
        let (x, y, z) = (
            LinearExpr::from_value(v(1)),
            LinearExpr::from_value(v(2)),
            LinearExpr::from_value(v(3)),
        );
        assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
    }

    #[test]
    fn distribution_over_sum() {
        // (x + 1) * (x - 1) == x*x - 1
        let x = LinearExpr::from_value(v(1));
        let one = LinearExpr::from_const(1);
        let lhs = x.add(&one).mul(&x.sub(&one), &id_rank);
        let xx = x.mul(&x, &id_rank);
        assert_eq!(lhs, xx.sub(&one));
        assert_eq!(lhs.terms.len(), 1);
        assert_eq!(lhs.terms[0].factors, vec![v(1), v(1)]);
        assert_eq!(lhs.constant, -1);
    }

    #[test]
    fn single_value_detection() {
        let x = LinearExpr::from_value(v(5));
        assert_eq!(x.as_single_value(), Some(v(5)));
        assert_eq!(x.scale(2).as_single_value(), None);
        assert_eq!(x.add(&LinearExpr::from_const(1)).as_single_value(), None);
        let back = x.scale(2).sub(&x);
        assert_eq!(back.as_single_value(), Some(v(5)));
    }

    #[test]
    fn factor_order_follows_rank() {
        // With rank(v3) < rank(v1), v1*v3 must store [v3, v1].
        let rank = |x: Value| if x == v(3) { 1 } else { 9 };
        let a = LinearExpr::from_value(v(1));
        let b = LinearExpr::from_value(v(3));
        let p = a.mul(&b, &rank);
        assert_eq!(p.terms[0].factors, vec![v(3), v(1)]);
        // Multiplication commutes because of the ordering.
        assert_eq!(p, b.mul(&a, &rank));
    }

    #[test]
    fn wrapping_coefficients() {
        let x = LinearExpr::from_value(v(1));
        let big = x.scale(i64::MAX);
        let sum = big.add(&x); // (MAX + 1) x = MIN x
        assert_eq!(sum.terms[0].coeff, i64::MIN);
    }

    #[test]
    fn eval_matches_structure() {
        // 2*x*y - 3*z + 7 at x=2,y=5,z=1 → 20 - 3 + 7 = 24
        let (x, y, z) = (
            LinearExpr::from_value(v(1)),
            LinearExpr::from_value(v(2)),
            LinearExpr::from_value(v(3)),
        );
        let e = x.mul(&y, &id_rank).scale(2).sub(&z.scale(3)).add(&LinearExpr::from_const(7));
        let assign = |w: Value| match w.index() {
            1 => 2,
            2 => 5,
            3 => 1,
            _ => 0,
        };
        assert_eq!(e.eval(&assign), 24);
    }

    #[test]
    fn size_counts_terms_and_factors() {
        let x = LinearExpr::from_value(v(1));
        let y = LinearExpr::from_value(v(2));
        assert_eq!(x.size(), 2);
        assert_eq!(x.add(&y).size(), 4);
        assert_eq!(x.mul(&y, &id_rank).size(), 3);
        assert_eq!(LinearExpr::from_const(5).size(), 0);
    }

    #[test]
    fn zero_scale_collapses() {
        let x = LinearExpr::from_value(v(1));
        assert_eq!(x.scale(0).as_const(), Some(0));
        assert_eq!(x.mul(&LinearExpr::from_const(0), &id_rank).as_const(), Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pgvn_ir::EntityRef;
    use proptest::prelude::*;

    fn id_rank(x: Value) -> u32 {
        x.index() as u32
    }

    /// A small random linear expression over values v0..v4.
    fn arb_linear() -> impl Strategy<Value = LinearExpr> {
        let term = (0usize..5, 1usize..3, -4i64..5)
            .prop_map(|(v, reps, coeff)| Term { factors: vec![Value::new(v); reps], coeff });
        (proptest::collection::vec(term, 0..4), -100i64..100).prop_map(|(terms, constant)| {
            LinearExpr { terms, constant }.add(&LinearExpr::from_const(0)) // normalize
        })
    }

    fn arb_assign() -> impl Strategy<Value = [i64; 5]> {
        proptest::array::uniform5(-7i64..8)
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_linear(), b in arb_linear()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn add_associates(a in arb_linear(), b in arb_linear(), c in arb_linear()) {
            prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        }

        #[test]
        fn mul_commutes(a in arb_linear(), b in arb_linear()) {
            prop_assert_eq!(a.mul(&b, &id_rank), b.mul(&a, &id_rank));
        }

        #[test]
        fn mul_distributes_over_add(a in arb_linear(), b in arb_linear(), c in arb_linear()) {
            let lhs = a.mul(&b.add(&c), &id_rank);
            let rhs = a.mul(&b, &id_rank).add(&a.mul(&c, &id_rank));
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn sub_then_add_roundtrips(a in arb_linear(), b in arb_linear()) {
            prop_assert_eq!(a.sub(&b).add(&b), a);
        }

        #[test]
        fn eval_respects_structure(a in arb_linear(), b in arb_linear(), vals in arb_assign()) {
            let assign = |v: Value| vals[v.index() % 5];
            prop_assert_eq!(a.add(&b).eval(&assign), a.eval(&assign).wrapping_add(b.eval(&assign)));
            prop_assert_eq!(a.sub(&b).eval(&assign), a.eval(&assign).wrapping_sub(b.eval(&assign)));
            prop_assert_eq!(a.mul(&b, &id_rank).eval(&assign), a.eval(&assign).wrapping_mul(b.eval(&assign)));
            prop_assert_eq!(a.neg().eval(&assign), a.eval(&assign).wrapping_neg());
        }

        #[test]
        fn normalization_is_canonical(a in arb_linear(), b in arb_linear(), vals in arb_assign()) {
            // Two syntactically different constructions of the same sum
            // normalize to the same structure.
            let one = a.add(&b);
            let two = b.add(&a);
            prop_assert_eq!(&one, &two);
            // And equal structures always evaluate equal.
            let assign = |v: Value| vals[v.index() % 5];
            prop_assert_eq!(one.eval(&assign), two.eval(&assign));
        }
    }
}
