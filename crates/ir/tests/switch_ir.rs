//! IR-level tests of the switch terminator: construction, verification,
//! printing, folding and interpretation.

use pgvn_ir::{assert_verifies, Function, HashedOpaques, InstKind, Interpreter};

fn switch_fn() -> (Function, Vec<pgvn_ir::Block>) {
    // switch (x) { 1 -> a, 5 -> b, default -> c }; each returns a constant.
    let mut f = Function::new("sw", 1);
    let entry = f.entry();
    let (a, b, c) = (f.add_block(), f.add_block(), f.add_block());
    f.set_switch(entry, f.param(0), &[1, 5], &[a, b], c);
    let ra = f.iconst(a, 10);
    f.set_return(a, ra);
    let rb = f.iconst(b, 50);
    f.set_return(b, rb);
    let rc = f.iconst(c, -1);
    f.set_return(c, rc);
    (f, vec![entry, a, b, c])
}

#[test]
fn builds_and_verifies() {
    let (f, blocks) = switch_fn();
    assert_verifies(&f);
    assert_eq!(f.succs(blocks[0]).len(), 3, "two cases + default");
    let term = f.terminator(blocks[0]).unwrap();
    assert!(matches!(f.kind(term), InstKind::Switch(_, cases) if cases == &vec![1, 5]));
}

#[test]
fn interprets_all_edges() {
    let (f, _) = switch_fn();
    let i = Interpreter::new(&f);
    let mut o = HashedOpaques::new(0);
    assert_eq!(i.run(&[1], &mut o).unwrap(), 10);
    assert_eq!(i.run(&[5], &mut o).unwrap(), 50);
    assert_eq!(i.run(&[2], &mut o).unwrap(), -1);
    assert_eq!(i.run(&[i64::MIN], &mut o).unwrap(), -1);
}

#[test]
fn prints_cases_and_default() {
    let (f, _) = switch_fn();
    let text = f.to_string();
    assert!(text.contains("switch v0, 1 -> bb1, 5 -> bb2, default -> bb3"), "{text}");
}

#[test]
fn fold_switch_keeps_one_edge() {
    let (mut f, blocks) = switch_fn();
    f.fold_switch_to(blocks[0], 1); // keep the `5` case
    assert_verifies(&f);
    assert_eq!(f.succs(blocks[0]).len(), 1);
    let term = f.terminator(blocks[0]).unwrap();
    assert_eq!(f.kind(term), &InstKind::Jump);
    let mut o = HashedOpaques::new(0);
    assert_eq!(Interpreter::new(&f).run(&[99], &mut o).unwrap(), 50);
}

#[test]
fn fold_switch_fixes_phis_at_destinations() {
    // All three switch edges target one join block with a φ.
    let mut f = Function::new("swj", 1);
    let entry = f.entry();
    let j = f.add_block();
    let x = f.param(0);
    let c1 = f.iconst(entry, 100);
    let c2 = f.iconst(entry, 200);
    let c3 = f.iconst(entry, 300);
    f.set_switch(entry, x, &[1, 2], &[j, j], j);
    let p = f.append_phi(j);
    f.set_phi_args(p, vec![c1, c2, c3]);
    f.set_return(j, p);
    assert_verifies(&f);
    let mut o = HashedOpaques::new(0);
    {
        let i = Interpreter::new(&f);
        assert_eq!(i.run(&[1], &mut o).unwrap(), 100);
        assert_eq!(i.run(&[2], &mut o).unwrap(), 200);
        assert_eq!(i.run(&[3], &mut o).unwrap(), 300);
    }
    // Fold to the default edge; the φ collapses to one argument.
    f.fold_switch_to(entry, 2);
    assert_verifies(&f);
    match f.kind(f.def(p)) {
        InstKind::Phi(args) => assert_eq!(args.len(), 1),
        other => panic!("{other:?}"),
    }
    assert_eq!(Interpreter::new(&f).run(&[1], &mut o).unwrap(), 300);
}

#[test]
#[should_panic(expected = "unique")]
fn duplicate_case_values_rejected() {
    let mut f = Function::new("dup", 1);
    let (a, b, c) = (f.add_block(), f.add_block(), f.add_block());
    f.set_switch(f.entry(), f.param(0), &[3, 3], &[a, b], c);
}

#[test]
#[should_panic(expected = "one target per case")]
fn mismatched_case_targets_rejected() {
    let mut f = Function::new("mis", 1);
    let (a, c) = (f.add_block(), f.add_block());
    f.set_switch(f.entry(), f.param(0), &[3, 4], &[a], c);
}
