//! Malformed-IR coverage for the structural verifier.
//!
//! The resilient pipeline's degradation ladder gates every rung commit
//! on `verify`, so these tests pin down that each class of corruption a
//! buggy rewrite could introduce — dangling block and value references,
//! φ-arity drift, terminator damage — is actually caught, not silently
//! accepted.

use pgvn_ir::{verify, BinOp, CmpOp, Function};

/// The diamond every test corrupts: `entry ─▶ {then, else} ─▶ join(φ)`.
fn diamond() -> Function {
    let mut f = Function::new("d", 2);
    let entry = f.entry();
    let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
    let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
    f.set_branch(entry, c, t, e);
    let x = f.iconst(t, 10);
    f.set_jump(t, j);
    let y = f.iconst(e, 20);
    f.set_jump(e, j);
    let p = f.append_phi(j);
    f.set_phi_args(p, vec![x, y]);
    f.set_return(j, p);
    verify(&f).expect("the uncorrupted diamond verifies");
    f
}

#[test]
fn live_block_without_terminator_is_rejected() {
    let mut f = diamond();
    // The exact corruption the fault-injection harness uses for its
    // verifier-reject class: a bare `add_block` leaves a live,
    // unterminated block.
    f.add_block();
    let e = verify(&f).expect_err("unterminated block must be rejected");
    assert!(e.message().contains("no terminator"), "{e}");
}

#[test]
fn dangling_edge_after_removal_is_rejected() {
    let mut f = diamond();
    // Drop one arm of the branch without fixing the terminator: the
    // branch now references a successor list with only one live edge.
    let gone = f.succs(f.entry())[0];
    f.remove_edge(gone);
    let e = verify(&f).expect_err("branch with one outgoing edge must be rejected");
    assert!(e.message().contains("outgoing edges"), "{e}");
}

#[test]
fn dangling_value_reference_is_rejected() {
    let mut f = diamond();
    // Remove the `then`-side constant whose value the φ still carries.
    let x = f
        .values()
        .find(|&v| matches!(f.kind(f.def(v)), pgvn_ir::InstKind::Const(10)))
        .expect("the 10 constant exists");
    f.remove_inst(f.def(x));
    let e = verify(&f).expect_err("use of a removed definition must be rejected");
    assert!(e.message().contains("not in a live block") || e.message().contains("uses"), "{e}");
}

#[test]
fn phi_arity_below_predecessor_count_is_rejected() {
    let mut f = diamond();
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    let x = f.param(0);
    f.set_phi_args(phi, vec![x]);
    let e = verify(&f).expect_err("φ arity below pred count must be rejected");
    assert!(e.message().contains("predecessors"), "{e}");
}

#[test]
fn phi_arity_above_predecessor_count_is_rejected() {
    let mut f = diamond();
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    let (a, b) = (f.param(0), f.param(1));
    f.set_phi_args(phi, vec![a, b, a]);
    let e = verify(&f).expect_err("φ arity above pred count must be rejected");
    assert!(e.message().contains("predecessors"), "{e}");
}

#[test]
fn use_from_unreachable_removed_block_is_rejected() {
    // A cross-block use whose defining block is later removed: the
    // shape a careless UCE rewrite would leave behind.
    let mut f = Function::new("f", 1);
    let entry = f.entry();
    let (a, b) = (f.add_block(), f.add_block());
    let c = f.cmp(entry, CmpOp::Eq, f.param(0), f.param(0));
    f.set_branch(entry, c, a, b);
    let x = f.iconst(a, 1);
    f.set_jump(a, b);
    let one = f.iconst(b, 1);
    let s = f.binary(b, BinOp::Add, x, one);
    f.set_return(b, s);
    verify(&f).expect("well-formed before the cut");
    f.fold_branch_to(entry, 1);
    f.remove_block(a);
    let e = verify(&f).expect_err("cross-block use of a removed def must be rejected");
    assert!(e.message().contains("not in a live block"), "{e}");
}
