//! Malformed-IR coverage for the structural verifier: the fixture matrix.
//!
//! The resilient pipeline's degradation ladder gates every rung commit
//! on `verify`, and `pgvn check` reports the same checks as stable
//! diagnostic codes, so these tests pin down that each class of
//! corruption a buggy rewrite could introduce — dangling block and
//! value references, φ-arity drift, φ/param placement, terminator
//! damage — is caught under its documented code, with its location,
//! and rendered faithfully in the JSON surface.
//!
//! Four codes require corrupting `Function` internals the public API
//! refuses to produce (`inst_block_mismatch`, `terminator_mid_block`,
//! `result_not_linked`, `missing_result`); their fixtures live in the
//! crate-internal test module of `src/verify.rs`.

use pgvn_ir::diag::codes;
use pgvn_ir::{verify, verify_into, BinOp, CmpOp, DiagnosticEngine, Function, InstKind, Severity};

/// The diamond every test corrupts: `entry ─▶ {then, else} ─▶ join(φ)`.
fn diamond() -> Function {
    let mut f = Function::new("d", 2);
    let entry = f.entry();
    let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
    let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
    f.set_branch(entry, c, t, e);
    let x = f.iconst(t, 10);
    f.set_jump(t, j);
    let y = f.iconst(e, 20);
    f.set_jump(e, j);
    let p = f.append_phi(j);
    f.set_phi_args(p, vec![x, y]);
    f.set_return(j, p);
    verify(&f).expect("the uncorrupted diamond verifies");
    f
}

/// Runs `verify_into` and asserts there is exactly one diagnostic
/// carrying `code`, that it is error-severity, and that its JSON
/// rendering names the code. Returns the engine for location checks.
fn expect_code(f: &Function, code: &str) -> DiagnosticEngine {
    let mut engine = DiagnosticEngine::new();
    verify_into(f, &mut engine);
    let matching: Vec<_> =
        engine.diagnostics().iter().filter(|d| d.code() == code).cloned().collect();
    assert_eq!(matching.len(), 1, "expected exactly one {code}: {:?}", engine.diagnostics());
    assert_eq!(matching[0].severity(), Severity::Error);
    assert!(
        matching[0].to_json().contains(&format!("\"code\":\"{code}\"")),
        "{}",
        matching[0].to_json()
    );
    // verify() reports the same first violation the engine collected.
    let first = verify(f).expect_err("a diagnosed function must not verify");
    assert_eq!(first.message(), engine.first().unwrap().message());
    engine
}

#[test]
fn live_block_without_terminator_is_rejected() {
    let mut f = diamond();
    // The exact corruption the fault-injection harness uses for its
    // verifier-reject class: a bare `add_block` leaves a live,
    // unterminated block.
    let orphan = f.add_block();
    let e = verify(&f).expect_err("unterminated block must be rejected");
    assert!(e.message().contains("no terminator"), "{e}");
    assert_eq!(e.code(), codes::BLOCK_NO_TERMINATOR);
    let engine = expect_code(&f, codes::BLOCK_NO_TERMINATOR);
    let d = engine.first().unwrap();
    assert_eq!(d.block(), Some(orphan));
    assert_eq!(d.inst(), None);
    assert!(d.to_json().contains("\"severity\":\"error\""), "{}", d.to_json());
}

#[test]
fn dangling_edge_after_removal_is_rejected() {
    let mut f = diamond();
    // Drop one arm of the branch without fixing the terminator: the
    // branch now references a successor list with only one live edge.
    let entry = f.entry();
    let gone = f.succs(entry)[0];
    f.remove_edge(gone);
    let e = verify(&f).expect_err("branch with one outgoing edge must be rejected");
    assert!(e.message().contains("outgoing edges"), "{e}");
    assert_eq!(e.code(), codes::TERMINATOR_EDGE_MISMATCH);
    let engine = expect_code(&f, codes::TERMINATOR_EDGE_MISMATCH);
    let d = engine.first().unwrap();
    assert_eq!(d.block(), Some(entry));
    assert_eq!(d.inst(), f.terminator(entry));
}

#[test]
fn dangling_value_reference_is_rejected() {
    let mut f = diamond();
    // Remove the `then`-side constant whose value the φ still carries.
    let x = f
        .values()
        .find(|&v| matches!(f.kind(f.def(v)), InstKind::Const(10)))
        .expect("the 10 constant exists");
    f.remove_inst(f.def(x));
    let e = verify(&f).expect_err("use of a removed definition must be rejected");
    assert!(e.message().contains("not in a live block"), "{e}");
    assert_eq!(e.code(), codes::DEAD_OPERAND_USE);
    let engine = expect_code(&f, codes::DEAD_OPERAND_USE);
    let d = engine.first().unwrap();
    // The φ in the join block is the offending use.
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    assert_eq!(d.inst(), Some(f.def(phi)));
    assert_eq!(d.block(), Some(f.inst_block(f.def(phi))));
}

#[test]
fn phi_arity_below_predecessor_count_is_rejected() {
    let mut f = diamond();
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    let x = f.param(0);
    f.set_phi_args(phi, vec![x]);
    let e = verify(&f).expect_err("φ arity below pred count must be rejected");
    assert!(e.message().contains("predecessors"), "{e}");
    assert_eq!(e.code(), codes::PHI_ARITY_MISMATCH);
    let engine = expect_code(&f, codes::PHI_ARITY_MISMATCH);
    assert_eq!(engine.first().unwrap().inst(), Some(f.def(phi)));
}

#[test]
fn phi_arity_above_predecessor_count_is_rejected() {
    let mut f = diamond();
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    let (a, b) = (f.param(0), f.param(1));
    f.set_phi_args(phi, vec![a, b, a]);
    let e = verify(&f).expect_err("φ arity above pred count must be rejected");
    assert!(e.message().contains("predecessors"), "{e}");
    assert_eq!(e.code(), codes::PHI_ARITY_MISMATCH);
}

#[test]
fn phi_after_non_phi_is_rejected() {
    let mut f = diamond();
    // Rewrite the entry-block comparison into a φ: it now sits after
    // the two `Param` instructions, breaking the φ-prefix invariant.
    // (Entry has no predecessors, so the empty argument list keeps the
    // arity check out of the picture.)
    let entry = f.entry();
    let cmp = f
        .block_insts(entry)
        .iter()
        .copied()
        .find(|&i| matches!(f.kind(i), InstKind::Cmp(..)))
        .expect("entry compares the params");
    f.replace_kind(cmp, InstKind::Phi(Vec::new()));
    let e = verify(&f).expect_err("φ after non-φ instructions must be rejected");
    assert!(e.message().contains("prefix"), "{e}");
    assert_eq!(e.code(), codes::PHI_NOT_PREFIX);
    let engine = expect_code(&f, codes::PHI_NOT_PREFIX);
    let d = engine.first().unwrap();
    assert_eq!(d.block(), Some(entry));
    assert_eq!(d.inst(), Some(cmp));
}

#[test]
fn param_outside_entry_block_is_rejected() {
    let mut f = diamond();
    // Rewrite the `then`-side constant into a Param: params may only
    // appear in the entry block.
    let x = f
        .values()
        .find(|&v| matches!(f.kind(f.def(v)), InstKind::Const(10)))
        .expect("the 10 constant exists");
    let inst = f.def(x);
    f.replace_kind(inst, InstKind::Param(0));
    let e = verify(&f).expect_err("param outside the entry block must be rejected");
    assert_eq!(e.code(), codes::PARAM_OUTSIDE_ENTRY);
    let engine = expect_code(&f, codes::PARAM_OUTSIDE_ENTRY);
    let d = engine.first().unwrap();
    assert_eq!(d.block(), Some(f.inst_block(inst)));
    assert_eq!(d.inst(), Some(inst));
}

#[test]
fn edge_to_removed_block_is_rejected() {
    // A jump wired to an already-tombstoned block: the shape a buggy
    // CFG simplification would leave after removing a block it still
    // believed reachable.
    let mut f = Function::new("f", 0);
    let entry = f.entry();
    let dead = f.add_block();
    f.remove_block(dead);
    f.set_jump(entry, dead);
    let e = verify(&f).expect_err("edge into a removed block must be rejected");
    assert!(e.message().contains("removed block"), "{e}");
    assert_eq!(e.code(), codes::EDGE_INCONSISTENT);
    let engine = expect_code(&f, codes::EDGE_INCONSISTENT);
    assert_eq!(engine.first().unwrap().block(), Some(entry));
}

#[test]
fn use_from_unreachable_removed_block_is_rejected() {
    // A cross-block use whose defining block is later removed: the
    // shape a careless UCE rewrite would leave behind.
    let mut f = Function::new("f", 1);
    let entry = f.entry();
    let (a, b) = (f.add_block(), f.add_block());
    let c = f.cmp(entry, CmpOp::Eq, f.param(0), f.param(0));
    f.set_branch(entry, c, a, b);
    let x = f.iconst(a, 1);
    f.set_jump(a, b);
    let one = f.iconst(b, 1);
    let s = f.binary(b, BinOp::Add, x, one);
    f.set_return(b, s);
    verify(&f).expect("well-formed before the cut");
    f.fold_branch_to(entry, 1);
    f.remove_block(a);
    let e = verify(&f).expect_err("cross-block use of a removed def must be rejected");
    assert!(e.message().contains("not in a live block"), "{e}");
    assert_eq!(e.code(), codes::DEAD_OPERAND_USE);
}

#[test]
fn json_array_renders_every_collected_violation() {
    let mut f = diamond();
    f.add_block(); // no terminator
    let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
    let x = f.param(0);
    f.set_phi_args(phi, vec![x]); // arity mismatch
    let mut engine = DiagnosticEngine::new();
    verify_into(&f, &mut engine);
    assert_eq!(engine.error_count(), 2, "{:?}", engine.diagnostics());
    let json = engine.to_json_array();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains(&format!("\"code\":\"{}\"", codes::BLOCK_NO_TERMINATOR)), "{json}");
    assert!(json.contains(&format!("\"code\":\"{}\"", codes::PHI_ARITY_MISMATCH)), "{json}");
}
