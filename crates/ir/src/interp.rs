//! A reference interpreter for the IR.
//!
//! The interpreter gives the IR an executable semantics, which the test
//! suite uses in two ways:
//!
//! 1. **Soundness of the analysis** — a value the GVN proves constant must
//!    evaluate to that constant on every run; a block the GVN proves
//!    unreachable must never execute; two congruent values defined in the
//!    same block must agree within each dynamic execution of the block.
//! 2. **Semantic preservation of transforms** — the optimized routine must
//!    return the same value as the original for the same inputs.
//!
//! Execution is fuel-limited so non-terminating loops are detected rather
//! than hanging tests.

use crate::entities::{Block, Edge, EntityRef, Value};
use crate::function::Function;
use crate::instr::InstKind;
use std::error::Error;
use std::fmt;

/// Why execution stopped without returning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel budget was exhausted (probable infinite loop).
    OutOfFuel,
    /// A value was read before any definition executed (malformed SSA).
    UndefinedValue(Value),
    /// A division or remainder by zero executed while the interpreter was
    /// configured to trap on them ([`Interpreter::trap_division`]). The
    /// IR's *defined* semantics are total (`x / 0 == 0`, see
    /// [`crate::instr::BinOp::eval`]); this trap exists for clients that
    /// model source languages where division by zero is undefined.
    DivisionByZero,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "execution ran out of fuel"),
            InterpError::UndefinedValue(v) => write!(f, "value {v} read before definition"),
            InterpError::DivisionByZero => write!(f, "division by zero (trapping mode)"),
        }
    }
}

impl Error for InterpError {}

/// A deterministic source of values for [`InstKind::Opaque`] instructions.
///
/// Opaque tokens model calls/loads the analysis cannot see through; an
/// execution treats each token as a fixed unknown input, so the same token
/// always yields the same value within one run (matching the analysis'
/// assumption that identical tokens are congruent).
pub trait OpaqueSource {
    /// Returns the value of opaque token `token`.
    fn value(&mut self, token: u32) -> i64;
}

impl<F: FnMut(u32) -> i64> OpaqueSource for F {
    fn value(&mut self, token: u32) -> i64 {
        self(token)
    }
}

/// An [`OpaqueSource`] that derives each token's value by hashing the token
/// with a seed. Cheap, deterministic, and well-spread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HashedOpaques {
    /// Seed mixed into every token.
    pub seed: u64,
}

impl HashedOpaques {
    /// Creates a source with the given seed.
    pub fn new(seed: u64) -> Self {
        HashedOpaques { seed }
    }
}

impl OpaqueSource for HashedOpaques {
    fn value(&mut self, token: u32) -> i64 {
        // splitmix64 over (seed, token).
        let mut z = self.seed ^ (u64::from(token).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as i64
    }
}

/// The observable result of a traced execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// How many times each block executed, indexed by block.
    pub block_visits: Vec<u64>,
    /// How many times each edge was traversed, indexed by edge.
    pub edge_visits: Vec<u64>,
    /// For each value, the last concrete value assigned (if any).
    pub last_value: Vec<Option<i64>>,
    /// Per dynamic block execution: `(block, values defined in that
    /// execution)`. Only recorded when tracing block instances is enabled.
    pub block_instances: Vec<(Block, Vec<(Value, i64)>)>,
}

/// Interpreter over a function.
#[derive(Debug)]
pub struct Interpreter<'a> {
    func: &'a Function,
    fuel: u64,
    record_instances: bool,
    trap_division: bool,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with the given fuel budget (counted in
    /// executed instructions).
    pub fn new(func: &'a Function) -> Self {
        Interpreter { func, fuel: 1_000_000, record_instances: false, trap_division: false }
    }

    /// Makes division/remainder by zero trap with
    /// [`InterpError::DivisionByZero`] instead of evaluating to `0`.
    ///
    /// Off by default: the IR's semantics are total, and the oracle's
    /// translation validator depends on the interpreter agreeing exactly
    /// with the constant folder's [`crate::instr::BinOp::eval`].
    pub fn trap_division(mut self, on: bool) -> Self {
        self.trap_division = on;
        self
    }

    /// Sets the fuel budget, in executed instructions.
    pub fn fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables recording of per-block-execution value instances (used by
    /// the congruence soundness property test).
    pub fn record_instances(mut self, on: bool) -> Self {
        self.record_instances = on;
        self
    }

    /// Runs the function on `args`, returning its result.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::OutOfFuel`] if the budget is exhausted and
    /// [`InterpError::UndefinedValue`] on malformed SSA input.
    pub fn run(&self, args: &[i64], opaques: &mut dyn OpaqueSource) -> Result<i64, InterpError> {
        self.run_traced(args, opaques).map(|(ret, _)| ret)
    }

    /// Runs the function on `args`, returning its result and an execution
    /// trace.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::run`].
    pub fn run_traced(
        &self,
        args: &[i64],
        opaques: &mut dyn OpaqueSource,
    ) -> Result<(i64, Trace), InterpError> {
        let func = self.func;
        let mut env: Vec<Option<i64>> = vec![None; func.value_capacity()];
        let mut trace = Trace {
            block_visits: vec![0; func.block_capacity()],
            edge_visits: vec![0; func.edge_capacity()],
            last_value: vec![None; func.value_capacity()],
            block_instances: Vec::new(),
        };
        let mut fuel = self.fuel;
        let mut block = func.entry();
        // The edge along which we arrived, for φ resolution.
        let mut arrived: Option<Edge> = None;

        loop {
            trace.block_visits[block.index()] += 1;
            let mut instance: Vec<(Value, i64)> = Vec::new();

            // Evaluate φs simultaneously from the arrival edge.
            let pred_pos = arrived.map(|e| {
                func.preds(block)
                    .iter()
                    .position(|&x| x == e)
                    .expect("arrival edge is a predecessor")
            });
            let mut phi_updates: Vec<(Value, i64)> = Vec::new();
            for &inst in func.block_insts(block) {
                let InstKind::Phi(phi_args) = func.kind(inst) else { break };
                let pos = pred_pos.expect("φ in entry block");
                let arg = phi_args[pos];
                let v = env[arg.index()].ok_or(InterpError::UndefinedValue(arg))?;
                phi_updates.push((func.inst_result(inst).expect("φ has a result"), v));
            }
            for &(r, v) in &phi_updates {
                env[r.index()] = Some(v);
                trace.last_value[r.index()] = Some(v);
                if self.record_instances {
                    instance.push((r, v));
                }
            }

            let mut next: Option<(Block, Edge)> = None;
            let mut returned: Option<i64> = None;
            for &inst in func.block_insts(block) {
                if func.kind(inst).is_phi() {
                    continue; // handled above
                }
                if fuel == 0 {
                    return Err(InterpError::OutOfFuel);
                }
                fuel -= 1;
                let get = |v: Value, env: &[Option<i64>]| {
                    env[v.index()].ok_or(InterpError::UndefinedValue(v))
                };
                match func.kind(inst) {
                    InstKind::Phi(_) => unreachable!(),
                    InstKind::Const(c) => {
                        self.define(inst, *c, &mut env, &mut trace, &mut instance)
                    }
                    InstKind::Param(i) => {
                        let v = args.get(*i as usize).copied().unwrap_or(0);
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Opaque(t) => {
                        let v = opaques.value(*t);
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Copy(a) => {
                        let v = get(*a, &env)?;
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Unary(op, a) => {
                        let v = op.eval(get(*a, &env)?);
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Binary(op, a, b) => {
                        let (x, y) = (get(*a, &env)?, get(*b, &env)?);
                        if self.trap_division
                            && y == 0
                            && matches!(op, crate::instr::BinOp::Div | crate::instr::BinOp::Rem)
                        {
                            return Err(InterpError::DivisionByZero);
                        }
                        let v = op.eval(x, y);
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Cmp(op, a, b) => {
                        let v = op.eval(get(*a, &env)?, get(*b, &env)?);
                        self.define(inst, v, &mut env, &mut trace, &mut instance);
                    }
                    InstKind::Jump => {
                        let e = func.succs(block)[0];
                        next = Some((func.edge_to(e), e));
                    }
                    InstKind::Branch(c) => {
                        let cond = get(*c, &env)?;
                        let e = func.succs(block)[if cond != 0 { 0 } else { 1 }];
                        next = Some((func.edge_to(e), e));
                    }
                    InstKind::Switch(a, cases) => {
                        let x = get(*a, &env)?;
                        let idx = cases.iter().position(|&c| c == x).unwrap_or(cases.len());
                        let e = func.succs(block)[idx];
                        next = Some((func.edge_to(e), e));
                    }
                    InstKind::Return(v) => {
                        returned = Some(get(*v, &env)?);
                    }
                }
            }

            if self.record_instances {
                trace.block_instances.push((block, instance));
            }
            if let Some(ret) = returned {
                return Ok((ret, trace));
            }
            let (next_block, edge) = next.expect("verified blocks end in a terminator");
            trace.edge_visits[edge.index()] += 1;
            block = next_block;
            arrived = Some(edge);
        }
    }

    fn define(
        &self,
        inst: crate::entities::Inst,
        v: i64,
        env: &mut [Option<i64>],
        trace: &mut Trace,
        instance: &mut Vec<(Value, i64)>,
    ) {
        let r = self.func.inst_result(inst).expect("non-terminator defines a result");
        env[r.index()] = Some(v);
        trace.last_value[r.index()] = Some(v);
        if self.record_instances {
            instance.push((r, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, CmpOp};

    #[test]
    fn straight_line_arithmetic() {
        let mut f = Function::new("f", 2);
        let b = f.entry();
        let s = f.binary(b, BinOp::Add, f.param(0), f.param(1));
        let two = f.iconst(b, 2);
        let m = f.binary(b, BinOp::Mul, s, two);
        f.set_return(b, m);
        let r = Interpreter::new(&f).run(&[3, 4], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r, 14);
    }

    #[test]
    fn branch_selects_edge() {
        let mut f = Function::new("max", 2);
        let entry = f.entry();
        let (t, e) = (f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        f.set_return(t, f.param(0));
        f.set_return(e, f.param(1));
        let interp = Interpreter::new(&f);
        let mut o = HashedOpaques::new(0);
        assert_eq!(interp.run(&[9, 2], &mut o).unwrap(), 9);
        assert_eq!(interp.run(&[2, 9], &mut o).unwrap(), 9);
        assert_eq!(interp.run(&[5, 5], &mut o).unwrap(), 5);
    }

    #[test]
    fn loop_with_phi_counts() {
        // i = 0; while (i < n) i = i + 1; return i
        let mut f = Function::new("count", 1);
        let entry = f.entry();
        let (head, body, exit) = (f.add_block(), f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        f.set_jump(entry, head);
        let i = f.append_phi(head);
        let c = f.cmp(head, CmpOp::Lt, i, f.param(0));
        f.set_branch(head, c, body, exit);
        let one = f.iconst(body, 1);
        let i2 = f.binary(body, BinOp::Add, i, one);
        f.set_jump(body, head);
        f.set_phi_args(i, vec![zero, i2]);
        f.set_return(exit, i);
        let interp = Interpreter::new(&f);
        let mut o = HashedOpaques::new(0);
        assert_eq!(interp.run(&[0], &mut o).unwrap(), 0);
        assert_eq!(interp.run(&[7], &mut o).unwrap(), 7);
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let mut f = Function::new("spin", 0);
        let entry = f.entry();
        let l = f.add_block();
        f.set_jump(entry, l);
        f.set_jump(l, l);
        let r = Interpreter::new(&f).fuel(100).run(&[], &mut HashedOpaques::new(0));
        assert_eq!(r, Err(InterpError::OutOfFuel));
    }

    #[test]
    fn trace_records_visits() {
        let mut f = Function::new("t", 1);
        let entry = f.entry();
        let (a, b) = (f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        let c = f.cmp(entry, CmpOp::Gt, f.param(0), zero);
        f.set_branch(entry, c, a, b);
        let one = f.iconst(a, 1);
        f.set_return(a, one);
        let two = f.iconst(b, 2);
        f.set_return(b, two);
        let (r, trace) = Interpreter::new(&f).run_traced(&[5], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r, 1);
        assert_eq!(trace.block_visits[a.index()], 1);
        assert_eq!(trace.block_visits[b.index()], 0);
        assert_eq!(trace.last_value[one.index()], Some(1));
        assert_eq!(trace.last_value[two.index()], None);
        let true_edge = f.succs(entry)[0];
        assert_eq!(trace.edge_visits[true_edge.index()], 1);
    }

    #[test]
    fn opaque_values_are_stable_per_token() {
        let mut f = Function::new("o", 0);
        let b = f.entry();
        let x = f.append(b, InstKind::Opaque(7));
        let y = f.append(b, InstKind::Opaque(7));
        let d = f.binary(b, BinOp::Sub, x, y);
        f.set_return(b, d);
        let r = Interpreter::new(&f).run(&[], &mut HashedOpaques::new(99)).unwrap();
        assert_eq!(r, 0);
    }

    #[test]
    fn block_instances_recorded_when_enabled() {
        let mut f = Function::new("f", 1);
        let b = f.entry();
        let one = f.iconst(b, 1);
        let s = f.binary(b, BinOp::Add, f.param(0), one);
        f.set_return(b, s);
        let (_, trace) = Interpreter::new(&f)
            .record_instances(true)
            .run_traced(&[41], &mut HashedOpaques::new(0))
            .unwrap();
        assert_eq!(trace.block_instances.len(), 1);
        let (blk, vals) = &trace.block_instances[0];
        assert_eq!(*blk, f.entry());
        assert!(vals.contains(&(s, 42)));
    }

    #[test]
    fn division_by_zero_is_total_by_default() {
        // The validator relies on execution agreeing exactly with the
        // constant folder: x / 0 == 0 and x % 0 == 0, no trap.
        for op in [BinOp::Div, BinOp::Rem] {
            let mut f = Function::new("d", 1);
            let b = f.entry();
            let zero = f.iconst(b, 0);
            let d = f.binary(b, op, f.param(0), zero);
            f.set_return(b, d);
            let r = Interpreter::new(&f).run(&[42], &mut HashedOpaques::new(0)).unwrap();
            assert_eq!(r, op.eval(42, 0));
            assert_eq!(r, 0);
        }
    }

    #[test]
    fn division_by_zero_traps_when_enabled() {
        for op in [BinOp::Div, BinOp::Rem] {
            let mut f = Function::new("d", 2);
            let b = f.entry();
            let d = f.binary(b, op, f.param(0), f.param(1));
            f.set_return(b, d);
            let interp = Interpreter::new(&f).trap_division(true);
            let r = interp.run(&[42, 0], &mut HashedOpaques::new(0));
            assert_eq!(r, Err(InterpError::DivisionByZero), "{op}");
            // Non-zero divisors still evaluate normally.
            assert_eq!(interp.run(&[42, 5], &mut HashedOpaques::new(0)).unwrap(), op.eval(42, 5));
        }
    }

    #[test]
    fn signed_overflow_wraps_like_the_folder() {
        // i64::MAX + 1, i64::MIN - 1, i64::MIN * -1, i64::MIN / -1,
        // -i64::MIN: all wrap, matching BinOp::eval/UnOp::eval exactly.
        let cases: &[(BinOp, i64, i64)] = &[
            (BinOp::Add, i64::MAX, 1),
            (BinOp::Sub, i64::MIN, 1),
            (BinOp::Mul, i64::MIN, -1),
            (BinOp::Div, i64::MIN, -1),
            (BinOp::Shl, 1, 63),
        ];
        for &(op, x, y) in cases {
            let mut f = Function::new("w", 2);
            let b = f.entry();
            let d = f.binary(b, op, f.param(0), f.param(1));
            f.set_return(b, d);
            let r = Interpreter::new(&f).run(&[x, y], &mut HashedOpaques::new(0)).unwrap();
            assert_eq!(r, op.eval(x, y), "{op} {x} {y}");
        }
        let mut f = Function::new("n", 1);
        let b = f.entry();
        let d = f.unary(b, crate::instr::UnOp::Neg, f.param(0));
        f.set_return(b, d);
        let r = Interpreter::new(&f).run(&[i64::MIN], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r, i64::MIN, "-i64::MIN wraps to itself");
    }

    #[test]
    fn fuel_exhaustion_is_divergence_not_a_value() {
        // A loop that would eventually return must report OutOfFuel — an
        // Err, never some partial Ok value — when the budget is smaller
        // than the trip count needs.
        let mut f = Function::new("count", 1);
        let entry = f.entry();
        let (head, body, exit) = (f.add_block(), f.add_block(), f.add_block());
        let zero = f.iconst(entry, 0);
        f.set_jump(entry, head);
        let i = f.append_phi(head);
        let c = f.cmp(head, CmpOp::Lt, i, f.param(0));
        f.set_branch(head, c, body, exit);
        let one = f.iconst(body, 1);
        let i2 = f.binary(body, BinOp::Add, i, one);
        f.set_jump(body, head);
        f.set_phi_args(i, vec![zero, i2]);
        f.set_return(exit, i);
        // Plenty of fuel: returns the trip count.
        assert_eq!(
            Interpreter::new(&f).fuel(10_000).run(&[100], &mut HashedOpaques::new(0)),
            Ok(100)
        );
        // Starved: divergence, not a truncated count.
        assert_eq!(
            Interpreter::new(&f).fuel(50).run(&[100], &mut HashedOpaques::new(0)),
            Err(InterpError::OutOfFuel)
        );
        // Fuel 0 diverges even though the entry block alone would return.
        assert_eq!(
            Interpreter::new(&f).fuel(0).run(&[0], &mut HashedOpaques::new(0)),
            Err(InterpError::OutOfFuel)
        );
    }

    #[test]
    fn missing_args_default_to_zero() {
        let mut f = Function::new("f", 2);
        let b = f.entry();
        let s = f.binary(b, BinOp::Add, f.param(0), f.param(1));
        f.set_return(b, s);
        assert_eq!(Interpreter::new(&f).run(&[5], &mut HashedOpaques::new(0)).unwrap(), 5);
    }
}
