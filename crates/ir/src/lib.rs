//! # pgvn-ir — SSA intermediate representation
//!
//! The intermediate representation used throughout the `pgvn` project, a
//! reproduction of Karthik Gargi's *"A Sparse Algorithm for Predicated
//! Global Value Numbering"* (PLDI 2002).
//!
//! The IR is a conventional arena-based SSA CFG with one notable choice
//! driven by the paper: **control flow edges are first-class entities**
//! ([`Edge`]), because the algorithm maintains the `REACHABLE` set and
//! `PREDICATE` mapping per edge, not per block.
//!
//! ## Quick tour
//!
//! ```
//! use pgvn_ir::{Function, BinOp, CmpOp, Interpreter, HashedOpaques};
//!
//! // abs_diff(x, y) = if x > y { x - y } else { y - x }
//! let mut f = Function::new("abs_diff", 2);
//! let entry = f.entry();
//! let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
//! let c = f.cmp(entry, CmpOp::Gt, f.param(0), f.param(1));
//! f.set_branch(entry, c, t, e);
//! let a = f.binary(t, BinOp::Sub, f.param(0), f.param(1));
//! f.set_jump(t, j);
//! let b = f.binary(e, BinOp::Sub, f.param(1), f.param(0));
//! f.set_jump(e, j);
//! let r = f.append_phi(j);
//! f.set_phi_args(r, vec![a, b]);
//! f.set_return(j, r);
//!
//! pgvn_ir::verify(&f)?;
//! let result = Interpreter::new(&f).run(&[3, 10], &mut HashedOpaques::new(0))?;
//! assert_eq!(result, 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diag;
pub mod entities;
pub mod function;
pub mod instr;
pub mod interp;
pub mod print;
pub mod verify;

pub use diag::{Diagnostic, DiagnosticEngine, Severity};
pub use entities::{Block, Edge, EntityRef, EntitySet, EntityVec, Inst, SecondaryMap, Value};
pub use function::{BlockData, DefUse, EdgeData, Function, ValueData};
pub use instr::{BinOp, CmpOp, InstData, InstKind, UnOp};
pub use interp::{HashedOpaques, InterpError, Interpreter, OpaqueSource, Trace};
pub use verify::{assert_verifies, verify, verify_into, VerifyError};
