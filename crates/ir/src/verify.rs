//! Structural verification of functions.
//!
//! [`verify`] checks every invariant that can be established without
//! dominance information: block/edge/instruction cross-references, φ
//! placement and arity, terminator placement, and operand validity.
//! The dominance-aware SSA check (every use dominated by its definition)
//! lives in `pgvn-analysis` because it needs a dominator tree.

use crate::entities::{EntityRef, Value};
use crate::function::Function;
use crate::instr::InstKind;
use std::error::Error;
use std::fmt;

/// An invariant violation found by [`verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the violation.
    message: String,
}

impl VerifyError {
    fn new(message: String) -> Self {
        VerifyError { message }
    }

    /// Returns the violation description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies the structural invariants of `func`.
///
/// # Errors
///
/// Returns the first violation found:
/// - every live block is terminated, with the terminator last and unique;
/// - φs form a prefix of their block and have one argument per incoming
///   edge;
/// - `Param` instructions appear only in the entry block;
/// - edge lists are consistent (`succs`/`preds` cross-reference the edge
///   arena, branch blocks have exactly 2 outgoing edges, jump blocks 1,
///   return blocks 0);
/// - all value operands reference live defining instructions.
pub fn verify(func: &Function) -> Result<(), VerifyError> {
    let err = |m: String| Err(VerifyError::new(m));

    let mut inst_live = vec![false; func.inst_capacity()];
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            inst_live[i.index()] = true;
        }
    }

    for b in func.blocks() {
        let insts = func.block_insts(b);
        let Some(term) = func.terminator(b) else {
            return err(format!("block {b} has no terminator"));
        };
        for (pos, &inst) in insts.iter().enumerate() {
            if func.inst_block(inst) != b {
                return err(format!(
                    "{inst} is listed in {b} but records block {}",
                    func.inst_block(inst)
                ));
            }
            let kind = func.kind(inst);
            if kind.is_terminator() && inst != term {
                return err(format!("{inst} is a terminator in the middle of {b}"));
            }
            if kind.is_phi() {
                let phis_so_far = insts[..pos].iter().all(|&i| func.kind(i).is_phi());
                if !phis_so_far {
                    return err(format!("φ {inst} does not form a prefix of {b}"));
                }
                if let InstKind::Phi(args) = kind {
                    if args.len() != func.preds(b).len() {
                        return err(format!(
                            "φ {inst} in {b} has {} args but the block has {} predecessors",
                            args.len(),
                            func.preds(b).len()
                        ));
                    }
                }
            }
            if matches!(kind, InstKind::Param(_)) && b != func.entry() {
                return err(format!("param instruction {inst} outside the entry block"));
            }
            if let Some(r) = func.inst_result(inst) {
                if func.def(r) != inst {
                    return err(format!("result {r} of {inst} does not point back to it"));
                }
            } else if !kind.is_terminator() {
                return err(format!("non-terminator {inst} has no result"));
            }
            let mut bad: Option<Value> = None;
            kind.visit_args(|v| {
                let def = func.def(v);
                if !inst_live[def.index()] && bad.is_none() {
                    bad = Some(v);
                }
            });
            if let Some(v) = bad {
                return err(format!("{inst} uses {v}, whose definition is not in a live block"));
            }
        }
        let expected_succs = match func.kind(term) {
            InstKind::Jump => 1,
            InstKind::Branch(_) => 2,
            InstKind::Switch(_, cases) => cases.len() + 1,
            InstKind::Return(_) => 0,
            _ => unreachable!(),
        };
        if func.succs(b).len() != expected_succs {
            return err(format!(
                "{b} terminator expects {expected_succs} outgoing edges, found {}",
                func.succs(b).len()
            ));
        }
        for &e in func.succs(b) {
            if func.is_edge_removed(e) {
                return err(format!("{b} lists removed edge {e} as successor"));
            }
            if func.edge_from(e) != b {
                return err(format!(
                    "edge {e} in succs of {b} originates at {}",
                    func.edge_from(e)
                ));
            }
            let to = func.edge_to(e);
            if func.is_block_removed(to) {
                return err(format!("edge {e} targets removed block {to}"));
            }
            if !func.preds(to).contains(&e) {
                return err(format!("edge {e} missing from preds of {to}"));
            }
        }
        for &e in func.preds(b) {
            if func.is_edge_removed(e) {
                return err(format!("{b} lists removed edge {e} as predecessor"));
            }
            if func.edge_to(e) != b {
                return err(format!("edge {e} in preds of {b} targets {}", func.edge_to(e)));
            }
            let from = func.edge_from(e);
            if func.is_block_removed(from) {
                return err(format!("edge {e} originates at removed block {from}"));
            }
            if !func.succs(from).contains(&e) {
                return err(format!("edge {e} missing from succs of {from}"));
            }
        }
    }
    Ok(())
}

/// Asserts that `func` verifies; panics with the violation otherwise.
///
/// # Panics
///
/// Panics if [`verify`] returns an error. Convenient in tests.
#[track_caller]
pub fn assert_verifies(func: &Function) {
    if let Err(e) = verify(func) {
        panic!("{e}\n{func}");
    }
}

/// Internal helpers for constructing deliberately broken functions in tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, CmpOp};

    fn valid_diamond() -> Function {
        let mut f = Function::new("d", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 10);
        f.set_jump(t, j);
        let y = f.iconst(e, 20);
        f.set_jump(e, j);
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        f.set_return(j, p);
        f
    }

    #[test]
    fn valid_function_verifies() {
        let f = valid_diamond();
        assert_eq!(verify(&f), Ok(()));
        assert_verifies(&f);
    }

    #[test]
    fn missing_terminator_detected() {
        let mut f = Function::new("f", 0);
        let _ = f.iconst(f.entry(), 1);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("no terminator"), "{e}");
    }

    #[test]
    fn phi_arity_mismatch_detected() {
        let mut f = valid_diamond();
        // Find the φ and give it a bogus arg list.
        let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
        let x = f.param(0);
        f.set_phi_args(phi, vec![x]);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("predecessors"), "{e}");
    }

    #[test]
    fn use_of_removed_definition_detected() {
        let mut f = Function::new("f", 1);
        let entry = f.entry();
        let (a, b) = (f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Eq, f.param(0), f.param(0));
        f.set_branch(entry, c, a, b);
        let x = f.iconst(a, 1);
        f.set_jump(a, b);
        // b uses x defined in a.
        let one = f.iconst(b, 1);
        let s = f.binary(b, BinOp::Add, x, one);
        f.set_return(b, s);
        assert_eq!(verify(&f), Ok(()));
        // Fold the branch so the entry keeps a well-formed terminator, then
        // drop block `a` entirely; `b` still uses x defined in `a`.
        f.fold_branch_to(entry, 1);
        f.remove_block(a);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("not in a live block"), "{e}");
    }

    #[test]
    fn verify_error_display_nonempty() {
        let e = VerifyError::new("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
