//! Structural verification of functions.
//!
//! [`verify`] checks every invariant that can be established without
//! dominance information: block/edge/instruction cross-references, φ
//! placement and arity, terminator placement, and operand validity.
//! The dominance-aware SSA check (every use dominated by its definition)
//! lives in `pgvn-analysis` because it needs a dominator tree.
//!
//! The checks report through the shared [`DiagnosticEngine`]: every
//! violation carries a stable code from [`crate::diag::codes`] and its
//! block/instruction location. [`verify_into`] collects *all* violations
//! (the `pgvn check` surface); [`verify`] keeps the historical contract
//! of returning the first one as a [`VerifyError`].

use crate::diag::{codes, Diagnostic, DiagnosticEngine};
use crate::entities::{Block, EntityRef, Inst, Value};
use crate::function::Function;
use crate::instr::InstKind;
use std::error::Error;
use std::fmt;

/// An invariant violation found by [`verify`]: the first diagnostic the
/// structural checks reported, with its stable code and location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    message: String,
    code: &'static str,
    block: Option<Block>,
    inst: Option<Inst>,
}

impl VerifyError {
    fn from_diagnostic(d: &Diagnostic) -> Self {
        VerifyError {
            message: d.message().to_string(),
            code: d.code(),
            block: d.block(),
            inst: d.inst(),
        }
    }

    /// Returns the violation description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The stable snake_case lint code (see [`crate::diag::codes`]).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The violating block, when the check localizes one.
    pub fn block(&self) -> Option<Block> {
        self.block
    }

    /// The violating instruction, when the check localizes one.
    pub fn inst(&self) -> Option<Inst> {
        self.inst
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.message)
    }
}

impl Error for VerifyError {}

/// Runs every structural check on `func`, reporting all violations into
/// `engine` as error-severity diagnostics in discovery order.
///
/// Unlike [`verify`], this does not stop at the first violation; a check
/// whose precondition failed (e.g. successor-count checks on a block
/// with no terminator) is skipped rather than reported spuriously.
pub fn verify_into(func: &Function, engine: &mut DiagnosticEngine) {
    let mut inst_live = vec![false; func.inst_capacity()];
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            inst_live[i.index()] = true;
        }
    }

    for b in func.blocks() {
        let insts = func.block_insts(b);
        let term = func.terminator(b);
        if term.is_none() {
            engine.report(
                Diagnostic::error(
                    codes::BLOCK_NO_TERMINATOR,
                    format!("block {b} has no terminator"),
                )
                .in_block(b),
            );
        }
        for (pos, &inst) in insts.iter().enumerate() {
            if func.inst_block(inst) != b {
                engine.report(
                    Diagnostic::error(
                        codes::INST_BLOCK_MISMATCH,
                        format!(
                            "{inst} is listed in {b} but records block {}",
                            func.inst_block(inst)
                        ),
                    )
                    .in_block(b)
                    .at_inst(inst),
                );
            }
            let kind = func.kind(inst);
            if kind.is_terminator() && Some(inst) != term {
                engine.report(
                    Diagnostic::error(
                        codes::TERMINATOR_MID_BLOCK,
                        format!("{inst} is a terminator in the middle of {b}"),
                    )
                    .in_block(b)
                    .at_inst(inst),
                );
            }
            if kind.is_phi() {
                let phis_so_far = insts[..pos].iter().all(|&i| func.kind(i).is_phi());
                if !phis_so_far {
                    engine.report(
                        Diagnostic::error(
                            codes::PHI_NOT_PREFIX,
                            format!("φ {inst} does not form a prefix of {b}"),
                        )
                        .in_block(b)
                        .at_inst(inst),
                    );
                }
                if let InstKind::Phi(args) = kind {
                    if args.len() != func.preds(b).len() {
                        engine.report(
                            Diagnostic::error(
                                codes::PHI_ARITY_MISMATCH,
                                format!(
                                    "φ {inst} in {b} has {} args but the block has {} predecessors",
                                    args.len(),
                                    func.preds(b).len()
                                ),
                            )
                            .in_block(b)
                            .at_inst(inst),
                        );
                    }
                }
            }
            if matches!(kind, InstKind::Param(_)) && b != func.entry() {
                engine.report(
                    Diagnostic::error(
                        codes::PARAM_OUTSIDE_ENTRY,
                        format!("param instruction {inst} outside the entry block"),
                    )
                    .in_block(b)
                    .at_inst(inst),
                );
            }
            if let Some(r) = func.inst_result(inst) {
                if func.def(r) != inst {
                    engine.report(
                        Diagnostic::error(
                            codes::RESULT_NOT_LINKED,
                            format!("result {r} of {inst} does not point back to it"),
                        )
                        .in_block(b)
                        .at_inst(inst),
                    );
                }
            } else if !kind.is_terminator() {
                engine.report(
                    Diagnostic::error(
                        codes::MISSING_RESULT,
                        format!("non-terminator {inst} has no result"),
                    )
                    .in_block(b)
                    .at_inst(inst),
                );
            }
            let mut bad: Option<Value> = None;
            kind.visit_args(|v| {
                let def = func.def(v);
                if !inst_live[def.index()] && bad.is_none() {
                    bad = Some(v);
                }
            });
            if let Some(v) = bad {
                engine.report(
                    Diagnostic::error(
                        codes::DEAD_OPERAND_USE,
                        format!("{inst} uses {v}, whose definition is not in a live block"),
                    )
                    .in_block(b)
                    .at_inst(inst),
                );
            }
        }
        if let Some(term) = term {
            let expected_succs = match func.kind(term) {
                InstKind::Jump => 1,
                InstKind::Branch(_) => 2,
                InstKind::Switch(_, cases) => cases.len() + 1,
                InstKind::Return(_) => 0,
                _ => unreachable!("terminator() only yields terminator kinds"),
            };
            if func.succs(b).len() != expected_succs {
                engine.report(
                    Diagnostic::error(
                        codes::TERMINATOR_EDGE_MISMATCH,
                        format!(
                            "{b} terminator expects {expected_succs} outgoing edges, found {}",
                            func.succs(b).len()
                        ),
                    )
                    .in_block(b)
                    .at_inst(term),
                );
            }
        }
        let edge_err = |m: String| Diagnostic::error(codes::EDGE_INCONSISTENT, m).in_block(b);
        for &e in func.succs(b) {
            if func.is_edge_removed(e) {
                engine.report(edge_err(format!("{b} lists removed edge {e} as successor")));
                continue;
            }
            if func.edge_from(e) != b {
                engine.report(edge_err(format!(
                    "edge {e} in succs of {b} originates at {}",
                    func.edge_from(e)
                )));
            }
            let to = func.edge_to(e);
            if func.is_block_removed(to) {
                engine.report(edge_err(format!("edge {e} targets removed block {to}")));
            } else if !func.preds(to).contains(&e) {
                engine.report(edge_err(format!("edge {e} missing from preds of {to}")));
            }
        }
        for &e in func.preds(b) {
            if func.is_edge_removed(e) {
                engine.report(edge_err(format!("{b} lists removed edge {e} as predecessor")));
                continue;
            }
            if func.edge_to(e) != b {
                engine.report(edge_err(format!(
                    "edge {e} in preds of {b} targets {}",
                    func.edge_to(e)
                )));
            }
            let from = func.edge_from(e);
            if func.is_block_removed(from) {
                engine.report(edge_err(format!("edge {e} originates at removed block {from}")));
            } else if !func.succs(from).contains(&e) {
                engine.report(edge_err(format!("edge {e} missing from succs of {from}")));
            }
        }
    }
}

/// Verifies the structural invariants of `func`.
///
/// # Errors
///
/// Returns the first violation found:
/// - every live block is terminated, with the terminator last and unique;
/// - φs form a prefix of their block and have one argument per incoming
///   edge;
/// - `Param` instructions appear only in the entry block;
/// - edge lists are consistent (`succs`/`preds` cross-reference the edge
///   arena, branch blocks have exactly 2 outgoing edges, jump blocks 1,
///   return blocks 0);
/// - all value operands reference live defining instructions.
pub fn verify(func: &Function) -> Result<(), VerifyError> {
    let mut engine = DiagnosticEngine::new();
    verify_into(func, &mut engine);
    match engine.first() {
        None => Ok(()),
        Some(d) => Err(VerifyError::from_diagnostic(d)),
    }
}

/// Asserts that `func` verifies; panics with the violation otherwise.
///
/// # Panics
///
/// Panics if [`verify`] returns an error. Convenient in tests.
#[track_caller]
pub fn assert_verifies(func: &Function) {
    if let Err(e) = verify(func) {
        panic!("{e}\n{func}");
    }
}

/// Internal helpers for constructing deliberately broken functions in tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, CmpOp};

    fn valid_diamond() -> Function {
        let mut f = Function::new("d", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 10);
        f.set_jump(t, j);
        let y = f.iconst(e, 20);
        f.set_jump(e, j);
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        f.set_return(j, p);
        f
    }

    #[test]
    fn valid_function_verifies() {
        let f = valid_diamond();
        assert_eq!(verify(&f), Ok(()));
        assert_verifies(&f);
        let mut engine = DiagnosticEngine::new();
        verify_into(&f, &mut engine);
        assert!(engine.is_empty());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut f = Function::new("f", 0);
        let _ = f.iconst(f.entry(), 1);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("no terminator"), "{e}");
        assert_eq!(e.code(), codes::BLOCK_NO_TERMINATOR);
        assert_eq!(e.block(), Some(f.entry()));
    }

    #[test]
    fn phi_arity_mismatch_detected() {
        let mut f = valid_diamond();
        // Find the φ and give it a bogus arg list.
        let phi = f.values().find(|&v| f.kind(f.def(v)).is_phi()).expect("diamond has a φ");
        let x = f.param(0);
        f.set_phi_args(phi, vec![x]);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("predecessors"), "{e}");
        assert_eq!(e.code(), codes::PHI_ARITY_MISMATCH);
        assert_eq!(e.inst(), Some(f.def(phi)));
    }

    #[test]
    fn use_of_removed_definition_detected() {
        let mut f = Function::new("f", 1);
        let entry = f.entry();
        let (a, b) = (f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Eq, f.param(0), f.param(0));
        f.set_branch(entry, c, a, b);
        let x = f.iconst(a, 1);
        f.set_jump(a, b);
        // b uses x defined in a.
        let one = f.iconst(b, 1);
        let s = f.binary(b, BinOp::Add, x, one);
        f.set_return(b, s);
        assert_eq!(verify(&f), Ok(()));
        // Fold the branch so the entry keeps a well-formed terminator, then
        // drop block `a` entirely; `b` still uses x defined in `a`.
        f.fold_branch_to(entry, 1);
        f.remove_block(a);
        let e = verify(&f).unwrap_err();
        assert!(e.message().contains("not in a live block"), "{e}");
        assert_eq!(e.code(), codes::DEAD_OPERAND_USE);
    }

    #[test]
    fn verify_error_display_nonempty() {
        let mut f = Function::new("f", 0);
        let _ = f.iconst(f.entry(), 1);
        let e = verify(&f).unwrap_err();
        assert!(e.to_string().contains("ir verification failed:"), "{e}");
        assert!(e.to_string().contains(e.message()));
    }

    /// Asserts exactly one diagnostic with `code` and returns it.
    fn sole_diagnostic(f: &Function, code: &'static str) -> Diagnostic {
        let mut engine = DiagnosticEngine::new();
        verify_into(f, &mut engine);
        let matching: Vec<_> =
            engine.diagnostics().iter().filter(|d| d.code() == code).cloned().collect();
        assert_eq!(matching.len(), 1, "expected exactly one {code}: {:?}", engine.diagnostics());
        assert!(
            matching[0].to_json().contains(&format!("\"code\":\"{code}\"")),
            "{}",
            matching[0].to_json()
        );
        matching[0].clone()
    }

    // The next four fixtures cover corruption the public mutation API
    // refuses to produce (its asserts maintain these invariants), so
    // they poke the crate-internal arenas directly — exactly what a
    // bug inside this crate's own mutators could cause.

    #[test]
    fn inst_recording_wrong_block_detected() {
        let mut f = valid_diamond();
        let t = f.blocks().nth(1).expect("diamond has 4 blocks");
        let inst = f.block_insts(t)[0];
        let entry = f.entry();
        f.insts[inst].block = entry;
        let d = sole_diagnostic(&f, codes::INST_BLOCK_MISMATCH);
        assert_eq!(d.block(), Some(t));
        assert_eq!(d.inst(), Some(inst));
    }

    #[test]
    fn terminator_in_the_middle_of_a_block_detected() {
        let mut f = valid_diamond();
        let t = f.blocks().nth(1).expect("diamond has 4 blocks");
        let jump = f.terminator(t).expect("then-block is terminated");
        // Swap the const and the jump: the jump is now mid-block (and
        // the block also loses its terminator, reported separately).
        f.blocks[t].insts.swap(0, 1);
        let d = sole_diagnostic(&f, codes::TERMINATOR_MID_BLOCK);
        assert_eq!(d.block(), Some(t));
        assert_eq!(d.inst(), Some(jump));
        let mut engine = DiagnosticEngine::new();
        verify_into(&f, &mut engine);
        assert!(engine.diagnostics().iter().any(|d| d.code() == codes::BLOCK_NO_TERMINATOR));
    }

    #[test]
    fn result_not_linked_back_detected() {
        let mut f = valid_diamond();
        let x = f
            .values()
            .find(|&v| matches!(f.kind(f.def(v)), InstKind::Const(10)))
            .expect("the 10 constant exists");
        let inst = f.def(x);
        // Point the value's def at a different live instruction.
        let other = f.block_insts(f.entry())[0];
        f.values[x].def = other;
        let d = sole_diagnostic(&f, codes::RESULT_NOT_LINKED);
        assert_eq!(d.block(), Some(f.inst_block(inst)));
        assert_eq!(d.inst(), Some(inst));
    }

    #[test]
    fn non_terminator_without_result_detected() {
        let mut f = valid_diamond();
        let y = f
            .values()
            .find(|&v| matches!(f.kind(f.def(v)), InstKind::Const(20)))
            .expect("the 20 constant exists");
        let inst = f.def(y);
        f.insts[inst].result = None;
        let d = sole_diagnostic(&f, codes::MISSING_RESULT);
        assert_eq!(d.block(), Some(f.inst_block(inst)));
        assert_eq!(d.inst(), Some(inst));
    }

    #[test]
    fn verify_into_collects_multiple_violations() {
        let mut f = Function::new("multi", 0);
        let _ = f.iconst(f.entry(), 1);
        // A second live block, also unterminated.
        let _ = f.add_block();
        let mut engine = DiagnosticEngine::new();
        verify_into(&f, &mut engine);
        assert_eq!(engine.error_count(), 2, "{:?}", engine.diagnostics());
        assert!(engine.diagnostics().iter().all(|d| d.code() == codes::BLOCK_NO_TERMINATOR));
        // The first collected diagnostic matches what verify() reports.
        let first = verify(&f).unwrap_err();
        assert_eq!(first.message(), engine.first().unwrap().message());
    }
}
