//! Instruction definitions and the concrete semantics of operators.
//!
//! The evaluation functions in this module are the *single* source of truth
//! for operator semantics: the constant folder in the GVN core and the
//! reference interpreter both call them, so a congruence-to-constant found
//! by the analysis is equal by construction to what execution produces.
//!
//! Integer semantics (documented in `DESIGN.md`): `i64` two's-complement
//! wrapping arithmetic; division and remainder by zero yield `0` (total
//! semantics, so folding is unconditionally sound); shift amounts are
//! masked to `0..=63`; comparisons yield `0` or `1`.

use crate::entities::{Block, Value};
use std::fmt;

/// A binary arithmetic or bitwise operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; `x / 0 == 0`, `i64::MIN / -1 == i64::MIN` (wrapping).
    Div,
    /// Remainder; `x % 0 == 0`, `i64::MIN % -1 == 0`.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Left shift; the shift amount is masked to `0..=63`.
    Shl,
    /// Arithmetic right shift; the shift amount is masked to `0..=63`.
    Shr,
}

impl BinOp {
    /// All binary operators, in a fixed order.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// Returns `true` if `a op b == b op a` for all inputs.
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Evaluates the operator on concrete operands.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        }
    }

    /// Returns the operator's printed mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Evaluates the operator on a concrete operand.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
        }
    }

    /// Returns the operator's printed mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A comparison operator; the result is `1` if the relation holds, else `0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators, in a fixed order.
    pub const ALL: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// Evaluates the comparison on concrete operands.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let holds = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        holds as i64
    }

    /// Returns the comparison with swapped operands: `a op b == b op.swap() a`.
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Returns the logical negation: `a op b == !(a op.negated() b)`.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Returns `true` when the relation holds for *equal* operands.
    pub fn holds_on_equal(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Le | CmpOp::Ge)
    }

    /// Returns the comparison's printed mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Returns the comparison's infix symbol (used by the pretty printer).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The payload of an instruction.
///
/// Every non-terminator instruction defines exactly one SSA value.
/// φ-functions have one argument per *incoming edge* of their block, in
/// the same order as the block's predecessor edge list.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// An integer constant.
    Const(i64),
    /// The `index`-th routine parameter; only valid in the entry block.
    Param(u32),
    /// A unary operation.
    Unary(UnOp, Value),
    /// A binary operation.
    Binary(BinOp, Value, Value),
    /// A comparison producing `0` or `1`.
    Cmp(CmpOp, Value, Value),
    /// A copy of another value (inserted by optimizations).
    Copy(Value),
    /// An opaque value the analysis knows nothing about (models a call or
    /// load). Two opaques are congruent only if they are the same token —
    /// the builder hands out distinct tokens, so in practice never.
    Opaque(u32),
    /// A φ-function merging one value per incoming edge of its block.
    Phi(Vec<Value>),
    /// Unconditional jump to the block's single outgoing edge.
    Jump,
    /// Conditional branch on a value: edge 0 is taken when the value is
    /// nonzero ("true edge"), edge 1 when it is zero ("false edge").
    Branch(Value),
    /// Multi-way branch: edge `i` is taken when the value equals
    /// `cases[i]`; the last edge is the default. Case values are unique.
    Switch(Value, Vec<i64>),
    /// Return a value from the routine.
    Return(Value),
}

impl InstKind {
    /// Returns `true` for jump, branch, switch and return instructions.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Jump | InstKind::Branch(_) | InstKind::Switch(..) | InstKind::Return(_)
        )
    }

    /// Returns `true` if the instruction defines a result value.
    pub fn has_result(&self) -> bool {
        !self.is_terminator()
    }

    /// Returns `true` for φ-functions.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi(_))
    }

    /// Visits every value operand.
    pub fn visit_args(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Const(_) | InstKind::Param(_) | InstKind::Opaque(_) | InstKind::Jump => {}
            InstKind::Unary(_, a)
            | InstKind::Copy(a)
            | InstKind::Branch(a)
            | InstKind::Switch(a, _)
            | InstKind::Return(a) => f(*a),
            InstKind::Binary(_, a, b) | InstKind::Cmp(_, a, b) => {
                f(*a);
                f(*b);
            }
            InstKind::Phi(args) => args.iter().copied().for_each(f),
        }
    }

    /// Rewrites every value operand through `f`.
    pub fn map_args(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstKind::Const(_) | InstKind::Param(_) | InstKind::Opaque(_) | InstKind::Jump => {}
            InstKind::Unary(_, a)
            | InstKind::Copy(a)
            | InstKind::Branch(a)
            | InstKind::Switch(a, _)
            | InstKind::Return(a) => *a = f(*a),
            InstKind::Binary(_, a, b) | InstKind::Cmp(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Phi(args) => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }
}

/// An instruction: a kind, the block containing it, and its result value.
#[derive(Clone, Debug)]
pub struct InstData {
    /// The instruction payload.
    pub kind: InstKind,
    /// The containing block.
    pub block: Block,
    /// The defined value, if [`InstKind::has_result`].
    pub result: Option<Value>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wrapping() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Sub.eval(i64::MIN, 1), i64::MAX);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(-7, 2), -3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::Rem.eval(-7, 2), -1);
    }

    #[test]
    fn binop_eval_total_on_zero_divisor() {
        assert_eq!(BinOp::Div.eval(42, 0), 0);
        assert_eq!(BinOp::Rem.eval(42, 0), 0);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn binop_eval_shift_masking() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
        assert_eq!(BinOp::Shr.eval(i64::MIN, 63), -1);
    }

    #[test]
    fn binop_commutativity_flags_match_semantics() {
        for op in BinOp::ALL {
            if op.is_commutative() {
                for (a, b) in [(3, 9), (-5, 7), (i64::MIN, -1), (0, 13)] {
                    assert_eq!(op.eval(a, b), op.eval(b, a), "{op} not commutative on {a},{b}");
                }
            }
        }
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN);
        assert_eq!(UnOp::Not.eval(0), -1);
    }

    #[test]
    fn cmp_eval_and_negation() {
        for op in CmpOp::ALL {
            for (a, b) in [(1, 2), (2, 1), (3, 3), (i64::MIN, i64::MAX)] {
                assert_eq!(
                    op.eval(a, b),
                    1 - op.negated().eval(a, b),
                    "{op} vs negation on {a},{b}"
                );
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op} vs swap on {a},{b}");
            }
            assert_eq!(op.holds_on_equal(), op.eval(7, 7) == 1);
        }
    }

    #[test]
    fn instkind_classification() {
        assert!(InstKind::Jump.is_terminator());
        assert!(InstKind::Branch(Value::from_u32(0)).is_terminator());
        assert!(InstKind::Return(Value::from_u32(0)).is_terminator());
        assert!(!InstKind::Const(3).is_terminator());
        assert!(InstKind::Const(3).has_result());
        assert!(!InstKind::Jump.has_result());
        assert!(InstKind::Phi(vec![]).is_phi());
        assert!(!InstKind::Const(0).is_phi());
    }

    #[test]
    fn instkind_visit_and_map_args() {
        let a = Value::from_u32(1);
        let b = Value::from_u32(2);
        let mut k = InstKind::Binary(BinOp::Add, a, b);
        let mut seen = Vec::new();
        k.visit_args(|v| seen.push(v));
        assert_eq!(seen, vec![a, b]);
        k.map_args(|v| Value::from_u32(v.as_u32() + 10));
        assert_eq!(k, InstKind::Binary(BinOp::Add, Value::from_u32(11), Value::from_u32(12)));

        let phi = InstKind::Phi(vec![a, b, a]);
        let mut n = 0;
        phi.visit_args(|_| n += 1);
        assert_eq!(n, 3);
    }
}
