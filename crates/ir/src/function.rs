//! The [`Function`] container: blocks, edges, instructions and values.
//!
//! A function is a control flow graph of basic blocks. Control flow edges
//! are materialized as entities because the paper's algorithm tracks
//! per-edge reachability and predicates. Instructions live in per-block
//! ordered lists; the last instruction of a complete block is a terminator
//! and φ-functions form a prefix of the block.

use crate::entities::{Block, Edge, EntityRef, EntityVec, Inst, Value};
use crate::instr::{BinOp, CmpOp, InstData, InstKind, UnOp};

/// A basic block: ordered instructions plus ordered incoming and outgoing
/// edge lists.
#[derive(Clone, Debug, Default)]
pub struct BlockData {
    /// Instructions in execution order; φs first, terminator last.
    pub insts: Vec<Inst>,
    /// Incoming edges. φ argument `i` corresponds to `preds[i]`.
    pub preds: Vec<Edge>,
    /// Outgoing edges. For a branch, index 0 is the true edge and index 1
    /// the false edge.
    pub succs: Vec<Edge>,
    /// Tombstone flag; removed blocks are skipped by iteration.
    pub removed: bool,
}

/// A control flow edge from one block to another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeData {
    /// Originating block.
    pub from: Block,
    /// Destination block.
    pub to: Block,
    /// Tombstone flag; removed edges are skipped by iteration.
    pub removed: bool,
}

/// Metadata for an SSA value.
#[derive(Clone, Debug)]
pub struct ValueData {
    /// The unique defining instruction.
    pub def: Inst,
}

/// A routine in SSA form.
///
/// # Examples
///
/// ```
/// use pgvn_ir::{Function, InstKind, BinOp};
///
/// let mut f = Function::new("double", 1);
/// let entry = f.entry();
/// let x = f.param(0);
/// let two = f.append(entry, InstKind::Const(2));
/// let d = f.append(entry, InstKind::Binary(BinOp::Mul, x, two));
/// f.set_return(entry, d);
/// assert_eq!(f.num_blocks(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Function {
    name: String,
    params: Vec<Value>,
    entry: Block,
    pub(crate) blocks: EntityVec<Block, BlockData>,
    pub(crate) insts: EntityVec<Inst, InstData>,
    pub(crate) values: EntityVec<Value, ValueData>,
    pub(crate) edges: EntityVec<Edge, EdgeData>,
}

impl Function {
    /// Creates a function with `num_params` parameters. The entry block is
    /// created and populated with one [`InstKind::Param`] instruction per
    /// parameter.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        let mut f = Function {
            name: name.into(),
            params: Vec::new(),
            entry: Block::new(0),
            blocks: EntityVec::new(),
            insts: EntityVec::new(),
            values: EntityVec::new(),
            edges: EntityVec::new(),
        };
        f.entry = f.add_block();
        for i in 0..num_params {
            let v = f.append(f.entry, InstKind::Param(i));
            f.params.push(v);
        }
        f
    }

    /// Returns the function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the entry block.
    pub fn entry(&self) -> Block {
        self.entry
    }

    /// Returns the value of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> Value {
        self.params[i as usize]
    }

    /// Returns all parameter values in order.
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// Number of (live) blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.values().filter(|b| !b.removed).count()
    }

    /// Total block slots ever allocated, including removed blocks.
    /// Suitable for sizing dense side tables.
    pub fn block_capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Total instruction slots ever allocated.
    pub fn inst_capacity(&self) -> usize {
        self.insts.len()
    }

    /// Total value slots ever allocated.
    pub fn value_capacity(&self) -> usize {
        self.values.len()
    }

    /// Total edge slots ever allocated.
    pub fn edge_capacity(&self) -> usize {
        self.edges.len()
    }

    /// Number of live instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.values().filter(|b| !b.removed).map(|b| b.insts.len()).sum()
    }

    /// Appends a fresh empty block.
    pub fn add_block(&mut self) -> Block {
        self.blocks.push(BlockData::default())
    }

    /// Iterates over live blocks in creation order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.blocks.iter().filter(|(_, d)| !d.removed).map(|(b, _)| b)
    }

    /// Iterates over live edges in creation order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().filter(|(_, d)| !d.removed).map(|(e, _)| e)
    }

    /// Returns `true` if `b` has been removed.
    pub fn is_block_removed(&self, b: Block) -> bool {
        self.blocks[b].removed
    }

    /// Returns `true` if `e` has been removed.
    pub fn is_edge_removed(&self, e: Edge) -> bool {
        self.edges[e].removed
    }

    /// Returns the block's instruction list in order.
    pub fn block_insts(&self, b: Block) -> &[Inst] {
        &self.blocks[b].insts
    }

    /// Returns the block's incoming edges in φ-argument order.
    pub fn preds(&self, b: Block) -> &[Edge] {
        &self.blocks[b].preds
    }

    /// Returns the block's outgoing edges in branch order.
    pub fn succs(&self, b: Block) -> &[Edge] {
        &self.blocks[b].succs
    }

    /// Returns the originating block of an edge.
    pub fn edge_from(&self, e: Edge) -> Block {
        self.edges[e].from
    }

    /// Returns the destination block of an edge.
    pub fn edge_to(&self, e: Edge) -> Block {
        self.edges[e].to
    }

    /// Returns the instruction data for `inst`.
    pub fn inst(&self, inst: Inst) -> &InstData {
        &self.insts[inst]
    }

    /// Returns the kind of `inst`.
    pub fn kind(&self, inst: Inst) -> &InstKind {
        &self.insts[inst].kind
    }

    /// Returns the block containing `inst`.
    pub fn inst_block(&self, inst: Inst) -> Block {
        self.insts[inst].block
    }

    /// Returns the result value of `inst`, if it defines one.
    pub fn inst_result(&self, inst: Inst) -> Option<Value> {
        self.insts[inst].result
    }

    /// Returns the defining instruction of `value`.
    pub fn def(&self, value: Value) -> Inst {
        self.values[value].def
    }

    /// Returns the block in which `value` is defined.
    pub fn def_block(&self, value: Value) -> Block {
        self.inst_block(self.def(value))
    }

    /// Returns the constant defined by `value`'s instruction, if it is a
    /// `Const`.
    pub fn value_as_const(&self, value: Value) -> Option<i64> {
        match self.kind(self.def(value)) {
            InstKind::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the terminator of `b`, if the block is complete.
    pub fn terminator(&self, b: Block) -> Option<Inst> {
        let last = *self.blocks[b].insts.last()?;
        self.insts[last].kind.is_terminator().then_some(last)
    }

    /// Iterates over all live values (results of instructions in live
    /// blocks).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.blocks
            .values()
            .filter(|b| !b.removed)
            .flat_map(|b| b.insts.iter())
            .filter_map(|&i| self.insts[i].result)
    }

    // ---------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------

    /// Appends a non-terminator instruction to `b` and returns its result
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a terminator (use [`Function::set_jump`],
    /// [`Function::set_branch`] or [`Function::set_return`]) or if the block
    /// is already terminated.
    pub fn append(&mut self, b: Block, kind: InstKind) -> Value {
        assert!(!kind.is_terminator(), "append requires a non-terminator; got {kind:?}");
        assert!(self.terminator(b).is_none(), "block {b} is already terminated");
        let inst = self.insts.push(InstData { kind, block: b, result: None });
        let value = self.values.push(ValueData { def: inst });
        self.insts[inst].result = Some(value);
        self.blocks[b].insts.push(inst);
        value
    }

    /// Appends an empty φ-function to `b`; arguments are filled in later
    /// with [`Function::set_phi_args`]. Returns the φ's result value.
    ///
    /// # Panics
    ///
    /// Panics if `b` already contains a non-φ instruction (φs must form a
    /// prefix of their block).
    pub fn append_phi(&mut self, b: Block) -> Value {
        let all_phis = self.blocks[b].insts.iter().all(|&i| self.insts[i].kind.is_phi());
        assert!(all_phis, "φ appended after non-φ instructions in {b}");
        self.append(b, InstKind::Phi(Vec::new()))
    }

    /// Inserts a non-terminator instruction immediately before `b`'s
    /// terminator (at the end when `b` is unterminated) and returns its
    /// result value. Used by transforms that materialize computations in
    /// already-complete predecessor blocks.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a terminator or a φ (φs must join the block's
    /// φ prefix — use [`Function::insert_phi`]).
    pub fn insert_before_terminator(&mut self, b: Block, kind: InstKind) -> Value {
        assert!(!kind.is_terminator(), "insert requires a non-terminator; got {kind:?}");
        assert!(!kind.is_phi(), "insert_before_terminator cannot place a φ");
        let inst = self.insts.push(InstData { kind, block: b, result: None });
        let value = self.values.push(ValueData { def: inst });
        self.insts[inst].result = Some(value);
        let pos = self.blocks[b]
            .insts
            .iter()
            .position(|&i| self.insts[i].kind.is_terminator())
            .unwrap_or(self.blocks[b].insts.len());
        self.blocks[b].insts.insert(pos, inst);
        value
    }

    /// Inserts an empty φ-function at the end of `b`'s φ prefix and
    /// returns its result value. Unlike [`Function::append_phi`] this
    /// works on blocks that already contain non-φ instructions (the PRE
    /// pass adds φ-merges to complete blocks); arguments are filled in
    /// later with [`Function::set_phi_args`].
    pub fn insert_phi(&mut self, b: Block) -> Value {
        let kind = InstKind::Phi(Vec::new());
        let inst = self.insts.push(InstData { kind, block: b, result: None });
        let value = self.values.push(ValueData { def: inst });
        self.insts[inst].result = Some(value);
        let pos = self.blocks[b]
            .insts
            .iter()
            .position(|&i| !self.insts[i].kind.is_phi())
            .unwrap_or(self.blocks[b].insts.len());
        self.blocks[b].insts.insert(pos, inst);
        value
    }

    /// Sets the arguments of the φ defining `phi_value`, one per incoming
    /// edge of its block, in predecessor order.
    ///
    /// # Panics
    ///
    /// Panics if `phi_value` is not defined by a φ.
    pub fn set_phi_args(&mut self, phi_value: Value, args: Vec<Value>) {
        let inst = self.def(phi_value);
        match &mut self.insts[inst].kind {
            InstKind::Phi(a) => *a = args,
            other => panic!("set_phi_args on non-φ {other:?}"),
        }
    }

    fn add_edge(&mut self, from: Block, to: Block) -> Edge {
        let e = self.edges.push(EdgeData { from, to, removed: false });
        self.blocks[from].succs.push(e);
        self.blocks[to].preds.push(e);
        e
    }

    fn set_terminator(&mut self, b: Block, kind: InstKind) -> Inst {
        assert!(self.terminator(b).is_none(), "block {b} is already terminated");
        let inst = self.insts.push(InstData { kind, block: b, result: None });
        self.blocks[b].insts.push(inst);
        inst
    }

    /// Terminates `b` with an unconditional jump to `target`, creating the
    /// edge. Returns the new edge.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated.
    pub fn set_jump(&mut self, b: Block, target: Block) -> Edge {
        self.set_terminator(b, InstKind::Jump);
        self.add_edge(b, target)
    }

    /// Terminates `b` with a conditional branch on `cond`. The first edge
    /// (to `then_target`) is taken when `cond != 0`. Returns the (true,
    /// false) edges.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated.
    pub fn set_branch(
        &mut self,
        b: Block,
        cond: Value,
        then_target: Block,
        else_target: Block,
    ) -> (Edge, Edge) {
        self.set_terminator(b, InstKind::Branch(cond));
        let t = self.add_edge(b, then_target);
        let e = self.add_edge(b, else_target);
        (t, e)
    }

    /// Terminates `b` with a return of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated.
    pub fn set_return(&mut self, b: Block, value: Value) {
        self.set_terminator(b, InstKind::Return(value));
    }

    /// Terminates `b` with a switch on `arg`: control transfers to
    /// `targets[i]` when `arg == cases[i]`, to `default` otherwise.
    /// Returns the created edges, case edges first, default edge last.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated, `cases` and `targets` have
    /// different lengths, or `cases` contains duplicates.
    pub fn set_switch(
        &mut self,
        b: Block,
        arg: Value,
        cases: &[i64],
        targets: &[Block],
        default: Block,
    ) -> Vec<Edge> {
        assert_eq!(cases.len(), targets.len(), "one target per case value");
        let mut sorted = cases.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cases.len(), "switch case values must be unique");
        self.set_terminator(b, InstKind::Switch(arg, cases.to_vec()));
        let mut edges: Vec<Edge> = targets.iter().map(|&t| self.add_edge(b, t)).collect();
        edges.push(self.add_edge(b, default));
        edges
    }

    // ---------------------------------------------------------------
    // Mutation (used by the transform crate)
    // ---------------------------------------------------------------

    /// Replaces the kind of a value-defining instruction in place.
    ///
    /// When a φ is replaced by a non-φ, the instruction is moved just
    /// after the block's φ prefix so that φs stay contiguous at the top
    /// (the interpreter and verifier rely on this invariant).
    ///
    /// # Panics
    ///
    /// Panics if the old and new kinds disagree about being a terminator.
    pub fn replace_kind(&mut self, inst: Inst, kind: InstKind) {
        assert_eq!(
            self.insts[inst].kind.is_terminator(),
            kind.is_terminator(),
            "replace_kind cannot change terminator-ness"
        );
        let was_phi = self.insts[inst].kind.is_phi();
        self.insts[inst].kind = kind;
        if was_phi && !self.insts[inst].kind.is_phi() {
            self.restore_phi_prefix(self.insts[inst].block, inst);
        }
    }

    /// Moves `inst` (which just stopped being a φ) to the end of `b`'s φ
    /// prefix, preserving the relative order of everything else.
    fn restore_phi_prefix(&mut self, b: Block, inst: Inst) {
        let pos = self.blocks[b].insts.iter().position(|&i| i == inst).expect("inst in its block");
        self.blocks[b].insts.remove(pos);
        let first_non_phi = self.blocks[b]
            .insts
            .iter()
            .position(|&i| !self.insts[i].kind.is_phi())
            .unwrap_or(self.blocks[b].insts.len());
        self.blocks[b].insts.insert(first_non_phi, inst);
    }

    /// Removes edge `e` from the graph, dropping the corresponding φ
    /// argument in the destination block.
    ///
    /// The originating block's terminator is *not* changed; callers that
    /// fold a branch should use [`Function::fold_branch_to`].
    pub fn remove_edge(&mut self, e: Edge) {
        if self.edges[e].removed {
            return;
        }
        let EdgeData { from, to, .. } = self.edges[e];
        let pred_pos =
            self.blocks[to].preds.iter().position(|&x| x == e).expect("edge in pred list");
        self.blocks[to].preds.remove(pred_pos);
        self.blocks[from].succs.retain(|&x| x != e);
        // Drop the matching φ argument in every φ of `to`.
        for &i in self.blocks[to].insts.clone().iter() {
            if let InstKind::Phi(args) = &mut self.insts[i].kind {
                if pred_pos < args.len() {
                    args.remove(pred_pos);
                }
            }
        }
        self.edges[e].removed = true;
    }

    /// Replaces the branch terminating `b` by a jump along its `keep`-th
    /// outgoing edge, removing the other edge.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not end in a branch or `keep` is not 0 or 1.
    pub fn fold_branch_to(&mut self, b: Block, keep: usize) {
        assert!(keep < 2, "branch edge index must be 0 or 1");
        let term = self.terminator(b).expect("terminated block");
        assert!(
            matches!(self.insts[term].kind, InstKind::Branch(_)),
            "{b} does not end in a branch"
        );
        let drop_edge = self.blocks[b].succs[1 - keep];
        self.remove_edge(drop_edge);
        self.insts[term].kind = InstKind::Jump;
    }

    /// Replaces the switch terminating `b` by a jump along its `keep`-th
    /// outgoing edge, removing all other edges.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not end in a switch or `keep` is out of range.
    pub fn fold_switch_to(&mut self, b: Block, keep: usize) {
        let term = self.terminator(b).expect("terminated block");
        assert!(
            matches!(self.insts[term].kind, InstKind::Switch(..)),
            "{b} does not end in a switch"
        );
        let succs = self.blocks[b].succs.clone();
        assert!(keep < succs.len(), "switch edge index out of range");
        for (i, e) in succs.into_iter().enumerate() {
            if i != keep {
                self.remove_edge(e);
            }
        }
        self.insts[term].kind = InstKind::Jump;
    }

    /// Removes block `b`: all its incoming and outgoing edges are removed
    /// (fixing φs of successors) and the block is tombstoned.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the entry block.
    pub fn remove_block(&mut self, b: Block) {
        assert!(b != self.entry, "cannot remove the entry block");
        if self.blocks[b].removed {
            return;
        }
        for e in self.blocks[b].preds.clone() {
            self.remove_edge(e);
        }
        for e in self.blocks[b].succs.clone() {
            self.remove_edge(e);
        }
        self.blocks[b].removed = true;
    }

    /// Removes a non-terminator instruction from its block (tombstones the
    /// slot). The caller is responsible for ensuring the result is unused.
    pub fn remove_inst(&mut self, inst: Inst) {
        let b = self.insts[inst].block;
        self.blocks[b].insts.retain(|&i| i != inst);
    }

    /// Replaces the φ defining `phi_value` by a copy of `src` (used when a
    /// φ becomes redundant after edge removal).
    pub fn replace_phi_with_copy(&mut self, phi_value: Value, src: Value) {
        let inst = self.def(phi_value);
        assert!(self.insts[inst].kind.is_phi(), "not a φ");
        self.insts[inst].kind = InstKind::Copy(src);
        self.restore_phi_prefix(self.insts[inst].block, inst);
    }

    // ---------------------------------------------------------------
    // Convenience constructors used ubiquitously in tests
    // ---------------------------------------------------------------

    /// Appends `Const(c)` to `b`.
    pub fn iconst(&mut self, b: Block, c: i64) -> Value {
        self.append(b, InstKind::Const(c))
    }

    /// Appends a binary operation to `b`.
    pub fn binary(&mut self, b: Block, op: BinOp, x: Value, y: Value) -> Value {
        self.append(b, InstKind::Binary(op, x, y))
    }

    /// Appends a comparison to `b`.
    pub fn cmp(&mut self, b: Block, op: CmpOp, x: Value, y: Value) -> Value {
        self.append(b, InstKind::Cmp(op, x, y))
    }

    /// Appends a unary operation to `b`.
    pub fn unary(&mut self, b: Block, op: UnOp, x: Value) -> Value {
        self.append(b, InstKind::Unary(op, x))
    }
}

/// Def-use information: for every value, the instructions that use it.
///
/// Computed once from a finished function; the GVN analysis does not mutate
/// the IR, so the chains stay valid for the whole run.
#[derive(Clone, Debug)]
pub struct DefUse {
    uses: EntityVec<Value, Vec<Inst>>,
}

impl DefUse {
    /// Computes def-use chains for `func`.
    pub fn compute(func: &Function) -> Self {
        let mut uses: EntityVec<Value, Vec<Inst>> =
            (0..func.values.len()).map(|_| Vec::new()).collect();
        for b in func.blocks() {
            for &inst in func.block_insts(b) {
                func.kind(inst).visit_args(|v| uses[v].push(inst));
            }
        }
        DefUse { uses }
    }

    /// Returns the instructions using `value` (with multiplicity).
    pub fn uses(&self, value: Value) -> &[Inst] {
        &self.uses[value]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// entry -> (then, else) -> join; `x = 10` in then, `y = 20` in else.
    fn diamond() -> (Function, Block, Block, Block, Block, Value, Value) {
        let mut f = Function::new("d", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Lt, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 10);
        let y = f.iconst(e, 20);
        f.set_jump(t, j);
        f.set_jump(e, j);
        (f, entry, t, e, j, x, y)
    }

    #[test]
    fn new_function_has_params_in_entry() {
        let f = Function::new("f", 3);
        assert_eq!(f.name(), "f");
        assert_eq!(f.params().len(), 3);
        assert_eq!(f.block_insts(f.entry()).len(), 3);
        assert_eq!(f.kind(f.def(f.param(2))), &InstKind::Param(2));
        assert_eq!(f.def_block(f.param(0)), f.entry());
    }

    #[test]
    fn append_assigns_results_in_order() {
        let mut f = Function::new("f", 0);
        let b = f.entry();
        let a = f.iconst(b, 1);
        let c = f.iconst(b, 2);
        let s = f.binary(b, BinOp::Add, a, c);
        assert_eq!(f.value_as_const(a), Some(1));
        assert_eq!(f.value_as_const(s), None);
        assert_eq!(f.inst_result(f.def(s)), Some(s));
        assert_eq!(f.num_insts(), 3);
    }

    #[test]
    fn branch_creates_ordered_edges() {
        let (f, entry, t, e, j, _x, _y) = diamond();
        let succs = f.succs(entry);
        assert_eq!(succs.len(), 2);
        assert_eq!(f.edge_to(succs[0]), t);
        assert_eq!(f.edge_to(succs[1]), e);
        assert_eq!(f.preds(j).len(), 2);
        assert_eq!(f.edge_from(f.preds(j)[0]), t);
        assert_eq!(f.edge_from(f.preds(j)[1]), e);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut f = Function::new("f", 0);
        let b = f.entry();
        let v = f.iconst(b, 0);
        f.set_return(b, v);
        f.set_return(b, v);
    }

    #[test]
    #[should_panic(expected = "non-terminator")]
    fn append_terminator_panics() {
        let mut f = Function::new("f", 0);
        let b = f.entry();
        f.append(b, InstKind::Jump);
    }

    #[test]
    fn phi_args_follow_pred_order() {
        let (mut f, _entry, _t, _e, j, x, y) = diamond();
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        match f.kind(f.def(p)) {
            InstKind::Phi(args) => assert_eq!(args, &vec![x, y]),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "φ appended after non-φ")]
    fn phi_after_nonphi_panics() {
        let mut f = Function::new("f", 1);
        f.append_phi(f.entry());
    }

    #[test]
    fn remove_edge_fixes_phis() {
        let (mut f, _entry, _t, _e, j, x, y) = diamond();
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        let drop = f.preds(j)[0];
        f.remove_edge(drop);
        assert!(f.is_edge_removed(drop));
        assert_eq!(f.preds(j).len(), 1);
        match f.kind(f.def(p)) {
            InstKind::Phi(args) => assert_eq!(args, &vec![y]),
            _ => panic!(),
        }
    }

    #[test]
    fn fold_branch_keeps_requested_edge() {
        let (mut f, entry, t, _e, _j, _x, _y) = diamond();
        f.fold_branch_to(entry, 0);
        assert_eq!(f.succs(entry).len(), 1);
        assert_eq!(f.edge_to(f.succs(entry)[0]), t);
        let term = f.terminator(entry).unwrap();
        assert_eq!(f.kind(term), &InstKind::Jump);
    }

    #[test]
    fn remove_block_detaches_all_edges() {
        let (mut f, _entry, t, _e, j, x, y) = diamond();
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        f.remove_block(t);
        assert!(f.is_block_removed(t));
        assert_eq!(f.preds(j).len(), 1);
        assert_eq!(f.num_blocks(), 3);
        // φ lost the argument from t.
        match f.kind(f.def(p)) {
            InstKind::Phi(args) => assert_eq!(args, &vec![y]),
            _ => panic!(),
        }
    }

    #[test]
    fn def_use_chains() {
        let mut f = Function::new("f", 1);
        let b = f.entry();
        let x = f.param(0);
        let one = f.iconst(b, 1);
        let a = f.binary(b, BinOp::Add, x, one);
        let c = f.binary(b, BinOp::Mul, a, a);
        f.set_return(b, c);
        let du = DefUse::compute(&f);
        assert_eq!(du.uses(x), &[f.def(a)]);
        assert_eq!(du.uses(a), &[f.def(c), f.def(c)]); // multiplicity
        assert_eq!(du.uses(c), &[f.terminator(b).unwrap()]);
        assert!(du.uses(one).contains(&f.def(a)));
    }

    #[test]
    fn values_iterates_live_only() {
        let (mut f, _entry, t, _e, _j, _x, _y) = diamond();
        let before = f.values().count();
        f.remove_block(t);
        // Block t contained one const, so one value disappears.
        assert_eq!(f.values().count(), before - 1);
    }

    #[test]
    fn replace_phi_with_copy() {
        let (mut f, _entry, _t, _e, j, x, y) = diamond();
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        f.replace_phi_with_copy(p, x);
        assert_eq!(f.kind(f.def(p)), &InstKind::Copy(x));
    }
}
