//! Entity references and dense entity maps.
//!
//! The IR is arena-based: blocks, instructions, values and edges are stored
//! in per-function vectors and referenced by small copyable index types
//! ("entity references"). This mirrors the layout used by production
//! compilers (Cranelift, LLVM's dense maps) and is what makes the sparse
//! worklist formulation of the paper cheap: set membership is a bit per
//! entity, and all per-entity side tables are flat vectors.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// A type that can be used as a dense index into an [`EntityVec`].
pub trait EntityRef: Copy + Eq + Hash {
    /// Creates an entity reference from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    fn new(index: usize) -> Self;

    /// Returns the raw index of this entity.
    fn index(self) -> usize;
}

macro_rules! entity_ref {
    ($(#[$attr:meta])* $name:ident, $prefix:expr) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $crate::entities::EntityRef for $name {
            #[inline]
            fn new(index: usize) -> Self {
                debug_assert!(index < u32::MAX as usize);
                $name(index as u32)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $name {
            /// Creates an entity reference from a raw index.
            #[inline]
            pub fn from_u32(index: u32) -> Self {
                $name(index)
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Display::fmt(self, f)
            }
        }
    };
}

entity_ref! {
    /// A reference to a basic block.
    Block, "bb"
}
entity_ref! {
    /// A reference to an instruction.
    Inst, "inst"
}
entity_ref! {
    /// A reference to an SSA value (the result of an instruction).
    Value, "v"
}
entity_ref! {
    /// A reference to a control flow edge.
    ///
    /// Edges are first class in this IR because the paper's algorithm keeps
    /// per-edge state: the `REACHABLE` set and the `PREDICATE` mapping both
    /// range over edges.
    Edge, "e"
}

/// A dense map from an entity reference to `V`, backed by a `Vec`.
#[derive(Clone, PartialEq, Eq)]
pub struct EntityVec<K, V> {
    elems: Vec<V>,
    marker: PhantomData<K>,
}

impl<K: EntityRef, V> EntityVec<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        EntityVec { elems: Vec::new(), marker: PhantomData }
    }

    /// Creates an empty map with capacity for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        EntityVec { elems: Vec::with_capacity(cap), marker: PhantomData }
    }

    /// Appends `value` and returns the entity reference of the new slot.
    pub fn push(&mut self, value: V) -> K {
        let key = K::new(self.elems.len());
        self.elems.push(value);
        key
    }

    /// Returns the number of entities.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if the map contains no entities.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Returns `true` if `key` indexes an existing slot.
    pub fn is_valid(&self, key: K) -> bool {
        key.index() < self.elems.len()
    }

    /// Returns a reference to the element for `key`, if valid.
    pub fn get(&self, key: K) -> Option<&V> {
        self.elems.get(key.index())
    }

    /// Iterates over `(key, &value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.elems.iter().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterates over `(key, &mut value)` pairs in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.elems.iter_mut().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterates over all keys in index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + use<K, V> {
        (0..self.elems.len()).map(K::new)
    }

    /// Iterates over all values in index order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.elems.iter()
    }
}

impl<K: EntityRef, V> Default for EntityVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef, V> std::ops::Index<K> for EntityVec<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: K) -> &V {
        &self.elems[key.index()]
    }
}

impl<K: EntityRef, V> std::ops::IndexMut<K> for EntityVec<K, V> {
    #[inline]
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.elems[key.index()]
    }
}

impl<K, V: fmt::Debug> fmt::Debug for EntityVec<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.elems.iter()).finish()
    }
}

impl<K: EntityRef, V> FromIterator<V> for EntityVec<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        EntityVec { elems: iter.into_iter().collect(), marker: PhantomData }
    }
}

/// A dense secondary map from an entity reference to `V`, with a default
/// value for entities that have not been written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecondaryMap<K, V> {
    elems: Vec<V>,
    default: V,
    marker: PhantomData<K>,
}

impl<K: EntityRef, V: Clone> SecondaryMap<K, V> {
    /// Creates a map whose entries default to `default`.
    pub fn with_default(default: V) -> Self {
        SecondaryMap { elems: Vec::new(), default, marker: PhantomData }
    }

    /// Creates a map sized for `len` entities up front.
    pub fn with_capacity(default: V, len: usize) -> Self {
        SecondaryMap { elems: vec![default.clone(); len], default, marker: PhantomData }
    }

    fn ensure(&mut self, key: K) {
        if key.index() >= self.elems.len() {
            self.elems.resize(key.index() + 1, self.default.clone());
        }
    }

    /// Resets every entry to the default value, keeping allocation.
    pub fn clear(&mut self) {
        for e in &mut self.elems {
            *e = self.default.clone();
        }
    }
}

impl<K: EntityRef, V: Clone> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: K) -> &V {
        self.elems.get(key.index()).unwrap_or(&self.default)
    }
}

impl<K: EntityRef, V: Clone> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    #[inline]
    fn index_mut(&mut self, key: K) -> &mut V {
        self.ensure(key);
        &mut self.elems[key.index()]
    }
}

/// A set of entities, backed by a bit vector, with a membership count.
///
/// This is the representation the paper recommends in section 3 for the
/// `TOUCHED`, `REACHABLE` and `CHANGED` sets: "values, instructions and
/// blocks can contain bit masks which specify the sets they belong to" and
/// "a count of the touched instructions and blocks can be maintained".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntitySet<K> {
    bits: Vec<u64>,
    len: usize,
    marker: PhantomData<K>,
}

// Manual impl: the derive would demand `K: Default`, but the key type is
// only an index and never constructed by `default()`.
impl<K> Default for EntitySet<K> {
    fn default() -> Self {
        EntitySet { bits: Vec::new(), len: 0, marker: PhantomData }
    }
}

impl<K: EntityRef> EntitySet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        EntitySet { bits: Vec::new(), len: 0, marker: PhantomData }
    }

    /// Creates an empty set with room for `n` entities.
    pub fn with_capacity(n: usize) -> Self {
        EntitySet { bits: vec![0; n.div_ceil(64)], len: 0, marker: PhantomData }
    }

    /// Returns the number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `key` is a member.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        let i = key.index();
        match self.bits.get(i / 64) {
            Some(word) => word & (1 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Inserts `key`; returns `true` if it was not already a member.
    #[inline]
    pub fn insert(&mut self, key: K) -> bool {
        let i = key.index();
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        let word = &mut self.bits[i / 64];
        let mask = 1 << (i % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `key`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, key: K) -> bool {
        let i = key.index();
        if let Some(word) = self.bits.get_mut(i / 64) {
            let mask = 1 << (i % 64);
            if *word & mask != 0 {
                *word &= !mask;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Removes every member, keeping allocation.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates over members in index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(K::new(wi * 64 + bit))
            })
        })
    }
}

impl<K: EntityRef> FromIterator<K> for EntitySet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut set = EntitySet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_ref_roundtrip() {
        let b = Block::new(17);
        assert_eq!(b.index(), 17);
        assert_eq!(b.as_u32(), 17);
        assert_eq!(Block::from_u32(17), b);
        assert_eq!(b.to_string(), "bb17");
        assert_eq!(format!("{b:?}"), "bb17");
    }

    #[test]
    fn entity_vec_push_index() {
        let mut v: EntityVec<Value, i64> = EntityVec::new();
        assert!(v.is_empty());
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[a] = 11;
        assert_eq!(v[a], 11);
        assert!(v.is_valid(a));
        assert!(!v.is_valid(Value::new(2)));
        assert_eq!(v.get(b), Some(&20));
        assert_eq!(v.get(Value::new(9)), None);
    }

    #[test]
    fn entity_vec_iteration() {
        let v: EntityVec<Inst, &str> = ["x", "y"].into_iter().collect();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(Inst::new(0), &"x"), (Inst::new(1), &"y")]);
        let keys: Vec<_> = v.keys().collect();
        assert_eq!(keys, vec![Inst::new(0), Inst::new(1)]);
    }

    #[test]
    fn secondary_map_defaults() {
        let mut m: SecondaryMap<Block, u32> = SecondaryMap::with_default(7);
        assert_eq!(m[Block::new(3)], 7);
        m[Block::new(3)] = 9;
        assert_eq!(m[Block::new(3)], 9);
        assert_eq!(m[Block::new(100)], 7);
        m.clear();
        assert_eq!(m[Block::new(3)], 7);
    }

    #[test]
    fn entity_set_basics() {
        let mut s: EntitySet<Inst> = EntitySet::new();
        assert!(s.is_empty());
        assert!(s.insert(Inst::new(5)));
        assert!(!s.insert(Inst::new(5)));
        assert!(s.insert(Inst::new(64)));
        assert!(s.insert(Inst::new(0)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(Inst::new(64)));
        assert!(!s.contains(Inst::new(63)));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![Inst::new(0), Inst::new(5), Inst::new(64)]);
        assert!(s.remove(Inst::new(5)));
        assert!(!s.remove(Inst::new(5)));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(Inst::new(0)));
    }

    #[test]
    fn entity_set_from_iter() {
        let s: EntitySet<Block> =
            [Block::new(1), Block::new(3), Block::new(1)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Block::new(3)));
    }

    #[test]
    fn entity_set_large_indices() {
        let mut s: EntitySet<Value> = EntitySet::with_capacity(10);
        assert!(s.insert(Value::new(1000)));
        assert!(s.contains(Value::new(1000)));
        assert!(!s.contains(Value::new(999)));
    }
}
