//! The shared diagnostic engine behind the verifier and the lint suite.
//!
//! Every static check in the project — the structural verifier in this
//! crate, the dominance/φ-cycle/type lints in `pgvn-transform`, and the
//! `pgvn check` CLI built on them — reports findings as [`Diagnostic`]s
//! collected by a [`DiagnosticEngine`]. A diagnostic carries a **stable
//! snake_case code** (the contract the fixture matrix, docs and CI key
//! on), a [`Severity`], a human-readable message, and a source location
//! expressed as the block/instruction ids of this IR. The engine renders
//! either text lines (for stderr) or JSON objects (for the JSONL
//! surfaces); both orderings are deterministic.
//!
//! The code catalog lives in [`codes`] (structural codes owned by this
//! crate) and is documented end to end in `docs/CHECK.md`.

use crate::entities::{Block, EntityRef, Inst};
use std::fmt;

/// Stable codes for the structural (verifier-owned) diagnostics.
///
/// These are part of the public contract: `docs/CHECK.md` documents each
/// one, `crates/ir/tests/verify_malformed.rs` pins a malformed fixture
/// to each, and the degradation ladder's `verifier_rejected` errors
/// carry them. Renaming one is a breaking change.
pub mod codes {
    /// A live block has no terminator instruction.
    pub const BLOCK_NO_TERMINATOR: &str = "block_no_terminator";
    /// An instruction is listed in a block but records another block.
    pub const INST_BLOCK_MISMATCH: &str = "inst_block_mismatch";
    /// A terminator appears before the end of its block.
    pub const TERMINATOR_MID_BLOCK: &str = "terminator_mid_block";
    /// A φ-function appears after a non-φ instruction.
    pub const PHI_NOT_PREFIX: &str = "phi_not_prefix";
    /// A φ-function's argument count differs from its block's
    /// predecessor count.
    pub const PHI_ARITY_MISMATCH: &str = "phi_arity_mismatch";
    /// A `Param` instruction appears outside the entry block.
    pub const PARAM_OUTSIDE_ENTRY: &str = "param_outside_entry";
    /// A result value does not point back to its defining instruction.
    pub const RESULT_NOT_LINKED: &str = "result_not_linked";
    /// A non-terminator instruction defines no result value.
    pub const MISSING_RESULT: &str = "missing_result";
    /// An operand references a definition outside every live block.
    pub const DEAD_OPERAND_USE: &str = "dead_operand_use";
    /// A block's outgoing-edge count disagrees with its terminator kind.
    pub const TERMINATOR_EDGE_MISMATCH: &str = "terminator_edge_mismatch";
    /// A succ/pred edge list disagrees with the edge arena (removed
    /// edges, wrong endpoints, or missing cross-references).
    pub const EDGE_INCONSISTENT: &str = "edge_inconsistent";
}

/// How serious a diagnostic is.
///
/// The ordering is meaningful: [`Severity::Error`] diagnostics make
/// `pgvn check` exit 1 and are the class the fuzz oracle diffs;
/// [`Severity::Warn`] flags suspicious-but-legal IR; and
/// [`Severity::Advisory`] marks missed-optimization opportunities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// An invariant violation: the IR is malformed.
    Error,
    /// Suspicious but well-formed IR (e.g. unreachable blocks).
    Warn,
    /// A missed-optimization note, never a correctness concern.
    Advisory,
}

impl Severity {
    /// All severities, most severe first.
    pub const ALL: [Severity; 3] = [Severity::Error, Severity::Warn, Severity::Advisory];

    /// Stable snake_case name used in text and JSON renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Advisory => "advisory",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a stable code, a severity, a message, and an optional
/// block/instruction location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    code: &'static str,
    severity: Severity,
    message: String,
    block: Option<Block>,
    inst: Option<Inst>,
}

impl Diagnostic {
    /// A new diagnostic with no location.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { code, severity, message: message.into(), block: None, inst: None }
    }

    /// Shorthand for an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// Shorthand for a warn-severity diagnostic.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warn, code, message)
    }

    /// Shorthand for an advisory-severity diagnostic.
    pub fn advisory(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Advisory, code, message)
    }

    /// Attaches the containing block.
    pub fn in_block(mut self, b: Block) -> Self {
        self.block = Some(b);
        self
    }

    /// Attaches the offending instruction.
    pub fn at_inst(mut self, i: Inst) -> Self {
        self.inst = Some(i);
        self
    }

    /// The stable snake_case code.
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The block location, if any.
    pub fn block(&self) -> Option<Block> {
        self.block
    }

    /// The instruction location, if any.
    pub fn inst(&self) -> Option<Inst> {
        self.inst
    }

    /// The location rendered as `bb2/inst5`, `bb2`, or `-` when absent.
    pub fn location(&self) -> String {
        match (self.block, self.inst) {
            (Some(b), Some(i)) => format!("{b}/{i}"),
            (Some(b), None) => b.to_string(),
            (None, Some(i)) => i.to_string(),
            (None, None) => "-".to_string(),
        }
    }

    /// One text line: `error[phi_arity_mismatch] at bb3/inst7: ...`.
    pub fn render_text(&self) -> String {
        format!("{}[{}] at {}: {}", self.severity, self.code, self.location(), self.message)
    }

    /// One JSON object (no trailing newline). Locations serialize as the
    /// numeric block/inst indices and are omitted when absent.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.message.len() + 64);
        out.push_str("{\"severity\":\"");
        out.push_str(self.severity.name());
        out.push_str("\",\"code\":\"");
        out.push_str(self.code);
        out.push('"');
        if let Some(b) = self.block {
            out.push_str(&format!(",\"block\":{}", b.index()));
        }
        if let Some(i) = self.inst {
            out.push_str(&format!(",\"inst\":{}", i.index()));
        }
        out.push_str(",\"message\":\"");
        escape_json(&self.message, &mut out);
        out.push_str("\"}");
        out
    }

    /// The deterministic presentation key: location first (function-level
    /// findings lead), then severity, then code.
    fn sort_key(&self) -> (usize, usize, Severity, &'static str) {
        let b = self.block.map(|b| b.index() + 1).unwrap_or(0);
        let i = self.inst.map(|i| i.index() + 1).unwrap_or(0);
        (b, i, self.severity, self.code)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Collects [`Diagnostic`]s and renders them deterministically.
///
/// Checks report in discovery order; [`DiagnosticEngine::sort`] moves the
/// collection to the canonical presentation order (by location, then
/// severity, then code — a stable sort, so same-key findings keep their
/// discovery order). The structural verifier relies on discovery order
/// to pick "the first violation", so it sorts only at the rendering
/// boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiagnosticEngine {
    diags: Vec<Diagnostic>,
}

impl DiagnosticEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one diagnostic.
    pub fn report(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All diagnostics, in current order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of diagnostics collected.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// `true` when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Diagnostics of the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warn-severity diagnostics.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Advisory-severity diagnostics.
    pub fn advisory_count(&self) -> usize {
        self.count(Severity::Advisory)
    }

    /// `true` when at least one error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// The first diagnostic in current order, if any.
    pub fn first(&self) -> Option<&Diagnostic> {
        self.diags.first()
    }

    /// Stable-sorts into canonical presentation order.
    pub fn sort(&mut self) {
        self.diags.sort_by_key(|d| d.sort_key());
    }

    /// Consumes the engine, yielding the diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Text rendering: one [`Diagnostic::render_text`] line per finding.
    pub fn text_lines(&self) -> Vec<String> {
        self.diags.iter().map(Diagnostic::render_text).collect()
    }

    /// JSON array of [`Diagnostic::to_json`] objects.
    pub fn to_json_array(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_names_are_stable() {
        assert_eq!(Severity::Error.name(), "error");
        assert_eq!(Severity::Warn.name(), "warn");
        assert_eq!(Severity::Advisory.name(), "advisory");
        assert!(Severity::Error < Severity::Warn && Severity::Warn < Severity::Advisory);
    }

    #[test]
    fn diagnostic_renders_text_and_json() {
        let d = Diagnostic::error(codes::PHI_ARITY_MISMATCH, "one arg, two preds")
            .in_block(Block::from_u32(3))
            .at_inst(Inst::from_u32(7));
        assert_eq!(d.location(), "bb3/inst7");
        assert_eq!(d.render_text(), "error[phi_arity_mismatch] at bb3/inst7: one arg, two preds");
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"error\",\"code\":\"phi_arity_mismatch\",\"block\":3,\
             \"inst\":7,\"message\":\"one arg, two preds\"}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::warn("demo_code", "quote \" slash \\ newline \n tab \t");
        let json = d.to_json();
        assert!(json.contains("quote \\\" slash \\\\ newline \\n tab \\t"), "{json}");
        assert_eq!(d.location(), "-");
    }

    #[test]
    fn engine_counts_and_sorts() {
        let mut e = DiagnosticEngine::new();
        e.report(Diagnostic::advisory("later", "at b2").in_block(Block::from_u32(2)));
        e.report(Diagnostic::error("earlier", "at b1").in_block(Block::from_u32(1)));
        e.report(Diagnostic::warn("function_level", "no location"));
        assert_eq!((e.error_count(), e.warn_count(), e.advisory_count()), (1, 1, 1));
        assert!(e.has_errors());
        assert_eq!(e.len(), 3);
        e.sort();
        let codes: Vec<&str> = e.diagnostics().iter().map(|d| d.code()).collect();
        assert_eq!(codes, ["function_level", "earlier", "later"]);
        let json = e.to_json_array();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"code\"").count(), 3);
    }

    #[test]
    fn empty_engine_is_clean() {
        let e = DiagnosticEngine::new();
        assert!(e.is_empty() && !e.has_errors());
        assert_eq!(e.to_json_array(), "[]");
        assert!(e.first().is_none());
        assert!(e.text_lines().is_empty());
    }
}
