//! Textual display of functions.
//!
//! The format is line-oriented and stable, intended for tests and examples:
//!
//! ```text
//! routine f(v0, v1) {
//! bb0:
//!   v2 = const 1
//!   v3 = add v0, v2
//!   branch v3, bb1, bb2    ; e0 e1
//! ...
//! }
//! ```

use crate::entities::Block;
use crate::function::Function;
use crate::instr::InstKind;
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "routine {}(", self.name())?;
        for (i, p) in self.params().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for b in self.blocks() {
            self.fmt_block(f, b)?;
        }
        writeln!(f, "}}")
    }
}

impl Function {
    fn fmt_block(&self, f: &mut fmt::Formatter<'_>, b: Block) -> fmt::Result {
        write!(f, "{b}:")?;
        if !self.preds(b).is_empty() {
            write!(f, "    ; preds:")?;
            for &e in self.preds(b) {
                write!(f, " {}({})", self.edge_from(e), e)?;
            }
        }
        writeln!(f)?;
        for &inst in self.block_insts(b) {
            write!(f, "  ")?;
            if let Some(r) = self.inst_result(inst) {
                write!(f, "{r} = ")?;
            }
            match self.kind(inst) {
                InstKind::Const(c) => writeln!(f, "const {c}")?,
                InstKind::Param(i) => writeln!(f, "param {i}")?,
                InstKind::Unary(op, a) => writeln!(f, "{op} {a}")?,
                InstKind::Binary(op, a, b2) => writeln!(f, "{op} {a}, {b2}")?,
                InstKind::Cmp(op, a, b2) => writeln!(f, "{op} {a}, {b2}")?,
                InstKind::Copy(a) => writeln!(f, "copy {a}")?,
                InstKind::Opaque(t) => writeln!(f, "opaque {t}")?,
                InstKind::Phi(args) => {
                    write!(f, "phi")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        let from = self.preds(b).get(i).map(|&e| self.edge_from(e));
                        match from {
                            Some(p) => write!(f, " [{p}: {a}]")?,
                            None => write!(f, " [?: {a}]")?,
                        }
                    }
                    writeln!(f)?;
                }
                InstKind::Jump => {
                    let e = self.succs(b)[0];
                    writeln!(f, "jump {}    ; {e}", self.edge_to(e))?;
                }
                InstKind::Branch(c) => {
                    let t = self.succs(b)[0];
                    let e = self.succs(b)[1];
                    writeln!(
                        f,
                        "branch {c}, {}, {}    ; {t} {e}",
                        self.edge_to(t),
                        self.edge_to(e)
                    )?;
                }
                InstKind::Switch(arg, cases) => {
                    write!(f, "switch {arg}")?;
                    for (i, c) in cases.iter().enumerate() {
                        write!(f, ", {c} -> {}", self.edge_to(self.succs(b)[i]))?;
                    }
                    let d = self.succs(b)[cases.len()];
                    writeln!(f, ", default -> {}", self.edge_to(d))?;
                }
                InstKind::Return(v) => writeln!(f, "return {v}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::function::Function;
    use crate::instr::{BinOp, CmpOp};

    #[test]
    fn display_straight_line() {
        let mut f = Function::new("f", 1);
        let b = f.entry();
        let one = f.iconst(b, 1);
        let s = f.binary(b, BinOp::Add, f.param(0), one);
        f.set_return(b, s);
        let text = f.to_string();
        assert!(text.contains("routine f(v0)"), "{text}");
        assert!(text.contains("v1 = const 1"), "{text}");
        assert!(text.contains("v2 = add v0, v1"), "{text}");
        assert!(text.contains("return v2"), "{text}");
    }

    #[test]
    fn display_cfg_with_phi() {
        let mut f = Function::new("g", 2);
        let entry = f.entry();
        let (t, e, j) = (f.add_block(), f.add_block(), f.add_block());
        let c = f.cmp(entry, CmpOp::Eq, f.param(0), f.param(1));
        f.set_branch(entry, c, t, e);
        let x = f.iconst(t, 1);
        f.set_jump(t, j);
        let y = f.iconst(e, 2);
        f.set_jump(e, j);
        let p = f.append_phi(j);
        f.set_phi_args(p, vec![x, y]);
        f.set_return(j, p);
        let text = f.to_string();
        assert!(text.contains("branch v2, bb1, bb2"), "{text}");
        assert!(text.contains("phi [bb1: v3], [bb2: v4]"), "{text}");
        assert!(text.contains("; preds: bb1(e2) bb2(e3)"), "{text}");
    }
}
