//! The pre-SSA variable IR.
//!
//! A [`VarFunction`] is a CFG whose instructions assign *named, mutable
//! variables* — the form a front end naturally produces before SSA
//! conversion. `pgvn-lang` lowers its AST to this form; `pgvn-ssa`'s
//! builder converts it to [`pgvn_ir::Function`] SSA.

use pgvn_ir::{BinOp, CmpOp, UnOp};
use std::fmt;

/// A mutable variable in a [`VarFunction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An expression tree over variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarExpr {
    /// An integer literal.
    Const(i64),
    /// A variable read.
    Var(Var),
    /// A unary operation.
    Unary(UnOp, Box<VarExpr>),
    /// A binary operation.
    Binary(BinOp, Box<VarExpr>, Box<VarExpr>),
    /// A comparison (yields 0/1).
    Cmp(CmpOp, Box<VarExpr>, Box<VarExpr>),
    /// An opaque unknown value with a token (models a call/load).
    Opaque(u32),
}

impl VarExpr {
    /// Visits every variable read in the expression.
    pub fn visit_vars(&self, f: &mut impl FnMut(Var)) {
        match self {
            VarExpr::Const(_) | VarExpr::Opaque(_) => {}
            VarExpr::Var(v) => f(*v),
            VarExpr::Unary(_, a) => a.visit_vars(f),
            VarExpr::Binary(_, a, b) | VarExpr::Cmp(_, a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
        }
    }
}

/// A non-terminator statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarStmt {
    /// `var = expr`.
    Assign(Var, VarExpr),
    /// Evaluate an expression for its (opaque) effect, discarding the
    /// result. Lowered from expression statements.
    Eval(VarExpr),
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarTerm {
    /// Unconditional jump to a block index.
    Jump(usize),
    /// Branch: first target when the expression is nonzero.
    Branch(VarExpr, usize, usize),
    /// Multi-way branch: `(case value, target)` pairs plus a default.
    Switch(VarExpr, Vec<(i64, usize)>, usize),
    /// Return an expression's value.
    Return(VarExpr),
}

/// A basic block of the variable IR.
#[derive(Clone, Debug, Default)]
pub struct VarBlock {
    /// Statements in execution order.
    pub stmts: Vec<VarStmt>,
    /// The terminator; `None` while under construction.
    pub term: Option<VarTerm>,
}

/// A routine over mutable variables; block 0 is the entry.
///
/// Parameters are ordinary variables pre-assigned from the routine
/// arguments on entry. Every variable reads as 0 before its first
/// assignment (documented total semantics; see `DESIGN.md`).
#[derive(Clone, Debug)]
pub struct VarFunction {
    name: String,
    var_names: Vec<String>,
    param_vars: Vec<Var>,
    blocks: Vec<VarBlock>,
}

impl VarFunction {
    /// Creates a routine whose parameters are fresh variables named after
    /// `params`. Block 0 (the entry) is created.
    pub fn new(name: impl Into<String>, params: &[&str]) -> Self {
        let mut f = VarFunction {
            name: name.into(),
            var_names: Vec::new(),
            param_vars: Vec::new(),
            blocks: vec![VarBlock::default()],
        };
        for p in params {
            let v = f.add_var(*p);
            f.param_vars.push(v);
        }
        f
    }

    /// The routine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter variables, in order.
    pub fn param_vars(&self) -> &[Var] {
        &self.param_vars
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The diagnostic name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Declares a fresh variable.
    pub fn add_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.into());
        v
    }

    /// Appends a fresh empty block and returns its index.
    pub fn add_block(&mut self) -> usize {
        self.blocks.push(VarBlock::default());
        self.blocks.len() - 1
    }

    /// The number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: usize) -> &VarBlock {
        &self.blocks[index]
    }

    /// Appends `stmt` to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn push(&mut self, b: usize, stmt: VarStmt) {
        assert!(self.blocks[b].term.is_none(), "block {b} is terminated");
        self.blocks[b].stmts.push(stmt);
    }

    /// Appends `var = expr` to block `b`.
    pub fn assign(&mut self, b: usize, var: Var, expr: VarExpr) {
        self.push(b, VarStmt::Assign(var, expr));
    }

    /// Sets the terminator of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated or a target is invalid.
    pub fn terminate(&mut self, b: usize, term: VarTerm) {
        assert!(self.blocks[b].term.is_none(), "block {b} is terminated");
        let check = |t: usize| assert!(t < self.blocks.len(), "jump target {t} out of range");
        match &term {
            VarTerm::Jump(t) => check(*t),
            VarTerm::Branch(_, t, e) => {
                check(*t);
                check(*e);
            }
            VarTerm::Switch(_, cases, d) => {
                for &(_, t) in cases {
                    check(t);
                }
                check(*d);
            }
            VarTerm::Return(_) => {}
        }
        self.blocks[b].term = Some(term);
    }

    /// Successor block indices of `b` (empty for returns).
    pub fn succs(&self, b: usize) -> Vec<usize> {
        match &self.blocks[b].term {
            Some(VarTerm::Jump(t)) => vec![*t],
            Some(VarTerm::Branch(_, t, e)) => vec![*t, *e],
            Some(VarTerm::Switch(_, cases, d)) => {
                let mut out: Vec<usize> = cases.iter().map(|&(_, t)| t).collect();
                out.push(*d);
                out
            }
            Some(VarTerm::Return(_)) | None => vec![],
        }
    }

    /// Checks that every block reachable from the entry is terminated.
    ///
    /// # Errors
    ///
    /// Returns the index of the first reachable unterminated block.
    pub fn validate(&self) -> Result<(), usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            if self.blocks[b].term.is_none() {
                return Err(b);
            }
            for s in self.succs(b) {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        Ok(())
    }
}

/// Shorthand constructors for [`VarExpr`] trees.
pub mod expr {
    use super::{Var, VarExpr};
    use pgvn_ir::{BinOp, CmpOp, UnOp};

    /// Integer literal.
    pub fn c(v: i64) -> VarExpr {
        VarExpr::Const(v)
    }
    /// Variable read.
    pub fn v(x: Var) -> VarExpr {
        VarExpr::Var(x)
    }
    /// Binary operation.
    pub fn bin(op: BinOp, a: VarExpr, b: VarExpr) -> VarExpr {
        VarExpr::Binary(op, Box::new(a), Box::new(b))
    }
    /// Addition.
    pub fn add(a: VarExpr, b: VarExpr) -> VarExpr {
        bin(BinOp::Add, a, b)
    }
    /// Subtraction.
    pub fn sub(a: VarExpr, b: VarExpr) -> VarExpr {
        bin(BinOp::Sub, a, b)
    }
    /// Multiplication.
    pub fn mul(a: VarExpr, b: VarExpr) -> VarExpr {
        bin(BinOp::Mul, a, b)
    }
    /// Comparison.
    pub fn cmp(op: CmpOp, a: VarExpr, b: VarExpr) -> VarExpr {
        VarExpr::Cmp(op, Box::new(a), Box::new(b))
    }
    /// Unary operation.
    pub fn un(op: UnOp, a: VarExpr) -> VarExpr {
        VarExpr::Unary(op, Box::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::expr::*;
    use super::*;
    use pgvn_ir::CmpOp;

    #[test]
    fn build_and_validate() {
        let mut f = VarFunction::new("f", &["a", "b"]);
        let (a, b) = (f.param_vars()[0], f.param_vars()[1]);
        let t = f.add_block();
        let e = f.add_block();
        f.terminate(0, VarTerm::Branch(cmp(CmpOp::Lt, v(a), v(b)), t, e));
        f.terminate(t, VarTerm::Return(v(a)));
        f.terminate(e, VarTerm::Return(v(b)));
        assert_eq!(f.validate(), Ok(()));
        assert_eq!(f.succs(0), vec![t, e]);
        assert_eq!(f.succs(t), Vec::<usize>::new());
        assert_eq!(f.var_name(a), "a");
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn validate_reports_unterminated_reachable_block() {
        let mut f = VarFunction::new("f", &[]);
        let b = f.add_block();
        f.terminate(0, VarTerm::Jump(b));
        assert_eq!(f.validate(), Err(b));
    }

    #[test]
    fn unreachable_unterminated_block_is_fine() {
        let mut f = VarFunction::new("f", &[]);
        let _orphan = f.add_block();
        f.terminate(0, VarTerm::Return(c(0)));
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn jump_target_validated() {
        let mut f = VarFunction::new("f", &[]);
        f.terminate(0, VarTerm::Jump(99));
    }

    #[test]
    fn visit_vars_covers_tree() {
        let mut f = VarFunction::new("f", &["a"]);
        let a = f.param_vars()[0];
        let b = f.add_var("b");
        let e = add(mul(v(a), c(2)), cmp(CmpOp::Eq, v(b), v(a)));
        let mut seen = Vec::new();
        e.visit_vars(&mut |x| seen.push(x));
        assert_eq!(seen, vec![a, b, a]);
    }
}
