//! Per-variable liveness on the variable CFG.
//!
//! Used by the *pruned* and *semi-pruned* SSA styles. The paper remarks
//! (§3) that "pruned SSA [...] can reduce the effectiveness of global value
//! numbering", which makes the SSA style an ablation axis of the
//! reproduction — so all three classic styles are available.

use crate::varfunc::{Var, VarFunction, VarStmt, VarTerm};

/// Block-level liveness sets for every variable.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// `live_in[b]` contains the variables live on entry to block `b`.
    live_in: Vec<Vec<bool>>,
    /// Variables that are used in some block before any local definition
    /// (Briggs' "non-local" / global variables, used by semi-pruned SSA).
    non_local: Vec<bool>,
}

fn block_use_def(func: &VarFunction, b: usize, nvars: usize) -> (Vec<bool>, Vec<bool>) {
    let mut used_before_def = vec![false; nvars];
    let mut defined = vec![false; nvars];
    let record_use = |v: Var, defined: &[bool], used: &mut [bool]| {
        if !defined[v.0 as usize] {
            used[v.0 as usize] = true;
        }
    };
    for stmt in &func.block(b).stmts {
        match stmt {
            VarStmt::Assign(dst, e) => {
                e.visit_vars(&mut |v| record_use(v, &defined, &mut used_before_def));
                defined[dst.0 as usize] = true;
            }
            VarStmt::Eval(e) => {
                e.visit_vars(&mut |v| record_use(v, &defined, &mut used_before_def))
            }
        }
    }
    match func.block(b).term.as_ref() {
        Some(VarTerm::Branch(e, _, _))
        | Some(VarTerm::Return(e))
        | Some(VarTerm::Switch(e, _, _)) => {
            e.visit_vars(&mut |v| record_use(v, &defined, &mut used_before_def));
        }
        _ => {}
    }
    (used_before_def, defined)
}

impl Liveness {
    /// Computes liveness by the standard backward fixed point.
    pub fn compute(func: &VarFunction) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_vars();
        let mut use_set = Vec::with_capacity(nb);
        let mut def_set = Vec::with_capacity(nb);
        for b in 0..nb {
            let (u, d) = block_use_def(func, b, nv);
            use_set.push(u);
            def_set.push(d);
        }
        let mut non_local = vec![false; nv];
        for u in &use_set {
            for (v, &used) in u.iter().enumerate() {
                if used {
                    non_local[v] = true;
                }
            }
        }
        let mut live_in: Vec<Vec<bool>> = vec![vec![false; nv]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = vec![false; nv];
                for s in func.succs(b) {
                    for v in 0..nv {
                        out[v] = out[v] || live_in[s][v];
                    }
                }
                for v in 0..nv {
                    let new = use_set[b][v] || (out[v] && !def_set[b][v]);
                    if new != live_in[b][v] {
                        live_in[b][v] = new;
                        changed = true;
                    }
                }
            }
        }
        Liveness { live_in, non_local }
    }

    /// Returns `true` if `v` is live on entry to block `b`.
    pub fn live_in(&self, b: usize, v: Var) -> bool {
        self.live_in[b][v.0 as usize]
    }

    /// Returns `true` if `v` is used in some block before any local
    /// definition (the semi-pruned "global variable" criterion).
    pub fn is_non_local(&self, v: Var) -> bool {
        self.non_local[v.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varfunc::expr::*;
    use pgvn_ir::CmpOp;

    #[test]
    fn straight_line_liveness() {
        // b0: t = a + 1; return t  — a live-in, t not.
        let mut f = VarFunction::new("f", &["a"]);
        let a = f.param_vars()[0];
        let t = f.add_var("t");
        f.assign(0, t, add(v(a), c(1)));
        f.terminate(0, VarTerm::Return(v(t)));
        let l = Liveness::compute(&f);
        assert!(l.live_in(0, a));
        assert!(!l.live_in(0, t));
        assert!(l.is_non_local(a));
        assert!(!l.is_non_local(t));
    }

    #[test]
    fn loop_carried_variable_is_live_at_header() {
        // b0: i = 0; jump b1
        // b1: branch (i < n) b2 b3
        // b2: i = i + 1; jump b1
        // b3: return i
        let mut f = VarFunction::new("f", &["n"]);
        let n = f.param_vars()[0];
        let i = f.add_var("i");
        let (b1, b2, b3) = (f.add_block(), f.add_block(), f.add_block());
        f.assign(0, i, c(0));
        f.terminate(0, VarTerm::Jump(b1));
        f.terminate(b1, VarTerm::Branch(cmp(CmpOp::Lt, v(i), v(n)), b2, b3));
        f.assign(b2, i, add(v(i), c(1)));
        f.terminate(b2, VarTerm::Jump(b1));
        f.terminate(b3, VarTerm::Return(v(i)));
        let l = Liveness::compute(&f);
        assert!(l.live_in(b1, i));
        assert!(l.live_in(b1, n));
        assert!(l.live_in(b2, i));
        assert!(l.live_in(b3, i));
        assert!(!l.live_in(b3, n));
        assert!(!l.live_in(0, i), "i is defined before use in b0");
        assert!(l.is_non_local(i));
    }

    #[test]
    fn dead_after_redefinition() {
        // b0: t = a; t = 5; return t — a is live-in, but t's first value dead.
        let mut f = VarFunction::new("f", &["a"]);
        let a = f.param_vars()[0];
        let t = f.add_var("t");
        f.assign(0, t, v(a));
        f.assign(0, t, c(5));
        f.terminate(0, VarTerm::Return(v(t)));
        let l = Liveness::compute(&f);
        assert!(l.live_in(0, a));
        assert!(!l.live_in(0, t));
    }
}
