//! SSA construction: [`VarFunction`] → [`pgvn_ir::Function`].
//!
//! The classic Cytron et al. recipe: place φ-functions at iterated
//! dominance frontiers of each variable's definition sites, then rename
//! along a preorder walk of the dominator tree with one definition stack
//! per variable.
//!
//! Three placement styles are supported ([`SsaStyle`]): *minimal*,
//! *semi-pruned* (φs only for Briggs "non-local" variables) and *pruned*
//! (φs only where the variable is live-in). The paper notes in §3 that
//! pruned SSA can reduce GVN effectiveness, so the style is exposed as an
//! ablation knob.
//!
//! Every variable implicitly reads as 0 before its first assignment; the
//! builder materializes this as a `const 0` definition at the entry so
//! renaming never sees an undefined stack.

use crate::liveness::Liveness;
use crate::varfunc::{Var, VarExpr, VarFunction, VarStmt, VarTerm};
use pgvn_analysis::GenericDomTree;
use pgvn_ir::{Block, Edge, Function, InstKind, Value};
use std::collections::HashMap;

/// φ-placement style.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SsaStyle {
    /// φs at all iterated dominance frontiers of definition sites.
    #[default]
    Minimal,
    /// φs only for variables used in some block before a local definition
    /// (Briggs' semi-pruned form).
    SemiPruned,
    /// φs only where the variable is live-in (pruned form).
    Pruned,
}

/// An error produced by [`build_ssa`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A block reachable from the entry has no terminator.
    UnterminatedBlock(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnterminatedBlock(b) => write!(f, "reachable block {b} has no terminator"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Converts `vf` to SSA form using the requested φ-placement style.
///
/// # Errors
///
/// Returns [`BuildError::UnterminatedBlock`] if a reachable block of `vf`
/// lacks a terminator.
///
/// # Examples
///
/// ```
/// use pgvn_ssa::{VarFunction, VarTerm, SsaStyle, build_ssa};
/// use pgvn_ssa::expr::*;
///
/// let mut vf = VarFunction::new("inc", &["x"]);
/// let x = vf.param_vars()[0];
/// let t = vf.add_var("t");
/// vf.assign(0, t, add(v(x), c(1)));
/// vf.terminate(0, VarTerm::Return(v(t)));
/// let f = build_ssa(&vf, SsaStyle::Minimal)?;
/// assert_eq!(f.name(), "inc");
/// # Ok::<(), pgvn_ssa::BuildError>(())
/// ```
pub fn build_ssa(vf: &VarFunction, style: SsaStyle) -> Result<Function, BuildError> {
    vf.validate().map_err(BuildError::UnterminatedBlock)?;
    let nb = vf.num_blocks();
    let nv = vf.num_vars();

    // Dominators of the variable CFG.
    let succs = |u: usize, out: &mut Vec<usize>| out.extend(vf.succs(u));
    let preds_vec: Vec<Vec<usize>> = {
        let mut p = vec![Vec::new(); nb];
        for b in 0..nb {
            for s in vf.succs(b) {
                p[s].push(b);
            }
        }
        p
    };
    let preds = |u: usize, out: &mut Vec<usize>| out.extend(preds_vec[u].iter().copied());
    let dt = GenericDomTree::compute(nb, 0, &succs, &preds);
    let df = dt.frontiers(&preds);

    let liveness = match style {
        SsaStyle::Minimal => None,
        _ => Some(Liveness::compute(vf)),
    };

    // Definition sites; every variable is implicitly defined at the entry.
    let mut def_sites: Vec<Vec<usize>> = vec![vec![0]; nv];
    for b in 0..nb {
        if !dt.is_reachable(b) {
            continue;
        }
        for stmt in &vf.block(b).stmts {
            if let VarStmt::Assign(v, _) = stmt {
                if !def_sites[v.0 as usize].contains(&b) {
                    def_sites[v.0 as usize].push(b);
                }
            }
        }
    }

    // Iterated dominance frontier φ placement.
    let mut needs_phi: Vec<Vec<Var>> = vec![Vec::new(); nb]; // per block, vars in placement order
    for (var_idx, sites) in def_sites.iter().enumerate().take(nv) {
        let var = Var(var_idx as u32);
        match (style, &liveness) {
            (SsaStyle::SemiPruned, Some(l)) if !l.is_non_local(var) => continue,
            _ => {}
        }
        let mut work: Vec<usize> = sites.clone();
        let mut placed = vec![false; nb];
        while let Some(b) = work.pop() {
            for &d in &df[b] {
                if placed[d] {
                    continue;
                }
                if let (SsaStyle::Pruned, Some(l)) = (style, &liveness) {
                    if !l.live_in(d, var) {
                        placed[d] = true; // don't revisit, but no φ
                        continue;
                    }
                }
                placed[d] = true;
                needs_phi[d].push(var);
                if !sites.contains(&d) {
                    work.push(d);
                }
            }
        }
    }

    // Create the SSA function and its blocks (reachable var blocks only).
    let mut func = Function::new(vf.name(), vf.param_vars().len() as u32);
    let mut block_of: Vec<Option<Block>> = vec![None; nb];
    block_of[0] = Some(func.entry());
    for (b, slot) in block_of.iter_mut().enumerate().skip(1) {
        if dt.is_reachable(b) {
            *slot = Some(func.add_block());
        }
    }

    // Pre-create φ instructions so predecessors can record arguments
    // before the destination is renamed.
    let mut phi_value: HashMap<(usize, Var), Value> = HashMap::new();
    for b in 0..nb {
        if let Some(fb) = block_of[b] {
            for &var in &needs_phi[b] {
                let pv = func.append_phi(fb);
                phi_value.insert((b, var), pv);
            }
        }
    }

    // The implicit initial value of every variable.
    let zero = func.iconst(func.entry(), 0);

    // Rename along a dominator-tree preorder walk.
    let mut stacks: Vec<Vec<Value>> = vec![vec![zero]; nv];
    for (i, &p) in vf.param_vars().iter().enumerate() {
        stacks[p.0 as usize].push(func.param(i as u32));
    }
    // Recorded φ arguments: (dest var block, var) -> edge -> value.
    let mut phi_args: HashMap<(usize, Var), Vec<(Edge, Value)>> = HashMap::new();

    // Explicit-stack preorder DFS with per-block pop counts.
    enum Action {
        Enter(usize),
        Exit(Vec<(usize, usize)>), // (var, how many defs to pop)
    }
    let mut agenda = vec![Action::Enter(0)];
    while let Some(action) = agenda.pop() {
        match action {
            Action::Exit(pops) => {
                for (var, count) in pops {
                    for _ in 0..count {
                        stacks[var].pop();
                    }
                }
            }
            Action::Enter(b) => {
                let fb = block_of[b].expect("renaming visits only reachable blocks");
                let mut pushes: Vec<(usize, usize)> = Vec::new();
                let push_def = |var: Var,
                                val: Value,
                                stacks: &mut Vec<Vec<Value>>,
                                pushes: &mut Vec<(usize, usize)>| {
                    stacks[var.0 as usize].push(val);
                    if let Some(entry) = pushes.iter_mut().find(|(v, _)| *v == var.0 as usize) {
                        entry.1 += 1;
                    } else {
                        pushes.push((var.0 as usize, 1));
                    }
                };

                // φ results become the current definitions.
                for &var in &needs_phi[b] {
                    let pv = phi_value[&(b, var)];
                    push_def(var, pv, &mut stacks, &mut pushes);
                }

                // Statements.
                for stmt in &vf.block(b).stmts {
                    match stmt {
                        VarStmt::Assign(var, e) => {
                            let val = flatten(&mut func, fb, e, &stacks);
                            push_def(*var, val, &mut stacks, &mut pushes);
                        }
                        VarStmt::Eval(e) => {
                            let _ = flatten(&mut func, fb, e, &stacks);
                        }
                    }
                }

                // Terminator: create edges and record φ arguments.
                let record =
                    |edge: Edge,
                     dest: usize,
                     stacks: &Vec<Vec<Value>>,
                     phi_args: &mut HashMap<(usize, Var), Vec<(Edge, Value)>>| {
                        for &var in &needs_phi[dest] {
                            let cur = *stacks[var.0 as usize]
                                .last()
                                .expect("stack has the zero sentinel");
                            phi_args.entry((dest, var)).or_default().push((edge, cur));
                        }
                    };
                match vf.block(b).term.as_ref().expect("validated") {
                    VarTerm::Jump(t) => {
                        let edge = func.set_jump(fb, block_of[*t].expect("target reachable"));
                        record(edge, *t, &stacks, &mut phi_args);
                    }
                    VarTerm::Branch(c, t, e) => {
                        let cv = flatten(&mut func, fb, c, &stacks);
                        let (te, ee) = func.set_branch(
                            fb,
                            cv,
                            block_of[*t].expect("target reachable"),
                            block_of[*e].expect("target reachable"),
                        );
                        record(te, *t, &stacks, &mut phi_args);
                        record(ee, *e, &stacks, &mut phi_args);
                    }
                    VarTerm::Switch(e, cases, d) => {
                        let sv = flatten(&mut func, fb, e, &stacks);
                        let case_vals: Vec<i64> = cases.iter().map(|&(c, _)| c).collect();
                        let targets: Vec<Block> = cases
                            .iter()
                            .map(|&(_, t)| block_of[t].expect("target reachable"))
                            .collect();
                        let edges = func.set_switch(
                            fb,
                            sv,
                            &case_vals,
                            &targets,
                            block_of[*d].expect("target reachable"),
                        );
                        for (i, &(_, t)) in cases.iter().enumerate() {
                            record(edges[i], t, &stacks, &mut phi_args);
                        }
                        record(edges[cases.len()], *d, &stacks, &mut phi_args);
                    }
                    VarTerm::Return(e) => {
                        let rv = flatten(&mut func, fb, e, &stacks);
                        func.set_return(fb, rv);
                    }
                }

                agenda.push(Action::Exit(pushes));
                // Visit dominator-tree children (reverse so RPO-first pops
                // first — order does not affect correctness).
                for c in dt.children(b).into_iter().rev() {
                    agenda.push(Action::Enter(c));
                }
            }
        }
    }

    // Fill in φ arguments in predecessor-edge order.
    for ((b, var), pv) in phi_value {
        let fb = block_of[b].expect("φ blocks are reachable");
        let recorded = phi_args.remove(&(b, var)).unwrap_or_default();
        let args: Vec<Value> = func
            .preds(fb)
            .iter()
            .map(|&e| {
                recorded
                    .iter()
                    .find(|(re, _)| *re == e)
                    .map(|&(_, v)| v)
                    .expect("every predecessor recorded a φ argument")
            })
            .collect();
        func.set_phi_args(pv, args);
    }

    Ok(func)
}

/// Flattens an expression tree into instructions at the end of `fb`,
/// resolving variable reads through the renaming stacks.
fn flatten(func: &mut Function, fb: Block, e: &VarExpr, stacks: &[Vec<Value>]) -> Value {
    match e {
        VarExpr::Const(c) => func.iconst(fb, *c),
        VarExpr::Var(v) => *stacks[v.0 as usize].last().expect("stack has the zero sentinel"),
        VarExpr::Opaque(t) => func.append(fb, InstKind::Opaque(*t)),
        VarExpr::Unary(op, a) => {
            let av = flatten(func, fb, a, stacks);
            func.unary(fb, *op, av)
        }
        VarExpr::Binary(op, a, b) => {
            let av = flatten(func, fb, a, stacks);
            let bv = flatten(func, fb, b, stacks);
            func.binary(fb, *op, av, bv)
        }
        VarExpr::Cmp(op, a, b) => {
            let av = flatten(func, fb, a, stacks);
            let bv = flatten(func, fb, b, stacks);
            func.cmp(fb, *op, av, bv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varfunc::expr::*;
    use pgvn_ir::{CmpOp, HashedOpaques, InstKind, Interpreter};

    fn count_phis(f: &Function) -> usize {
        f.values().filter(|&v| f.kind(f.def(v)).is_phi()).count()
    }

    /// i = 0; s = 0; while (i < n) { s = s + i; i = i + 1 } return s
    fn sum_loop() -> VarFunction {
        let mut vf = VarFunction::new("sum", &["n"]);
        let n = vf.param_vars()[0];
        let i = vf.add_var("i");
        let s = vf.add_var("s");
        let (head, body, exit) = (vf.add_block(), vf.add_block(), vf.add_block());
        vf.assign(0, i, c(0));
        vf.assign(0, s, c(0));
        vf.terminate(0, VarTerm::Jump(head));
        vf.terminate(head, VarTerm::Branch(cmp(CmpOp::Lt, v(i), v(n)), body, exit));
        vf.assign(body, s, add(v(s), v(i)));
        vf.assign(body, i, add(v(i), c(1)));
        vf.terminate(body, VarTerm::Jump(head));
        vf.terminate(exit, VarTerm::Return(v(s)));
        vf
    }

    #[test]
    fn sum_loop_all_styles_execute_correctly() {
        let vf = sum_loop();
        for style in [SsaStyle::Minimal, SsaStyle::SemiPruned, SsaStyle::Pruned] {
            let f = build_ssa(&vf, style).unwrap();
            pgvn_analysis::assert_ssa(&f);
            let interp = Interpreter::new(&f);
            let mut o = HashedOpaques::new(0);
            assert_eq!(interp.run(&[5], &mut o).unwrap(), 10, "{style:?}");
            assert_eq!(interp.run(&[0], &mut o).unwrap(), 0, "{style:?}");
            assert_eq!(interp.run(&[-3], &mut o).unwrap(), 0, "{style:?}");
        }
    }

    #[test]
    fn pruned_places_no_more_phis_than_minimal() {
        let vf = sum_loop();
        let minimal = count_phis(&build_ssa(&vf, SsaStyle::Minimal).unwrap());
        let semi = count_phis(&build_ssa(&vf, SsaStyle::SemiPruned).unwrap());
        let pruned = count_phis(&build_ssa(&vf, SsaStyle::Pruned).unwrap());
        assert!(pruned <= semi && semi <= minimal, "{pruned} <= {semi} <= {minimal}");
        // The loop needs φs for i and s at the header in all styles.
        assert!(pruned >= 2);
    }

    #[test]
    fn pruned_drops_dead_phi() {
        // if (p) { t = 1 } else { t = 2 }  — t never used after the join.
        let mut vf = VarFunction::new("dead", &["p"]);
        let p = vf.param_vars()[0];
        let t = vf.add_var("t");
        let (bt, be, j) = (vf.add_block(), vf.add_block(), vf.add_block());
        vf.terminate(0, VarTerm::Branch(v(p), bt, be));
        vf.assign(bt, t, c(1));
        vf.terminate(bt, VarTerm::Jump(j));
        vf.assign(be, t, c(2));
        vf.terminate(be, VarTerm::Jump(j));
        vf.terminate(j, VarTerm::Return(c(0)));
        let minimal = count_phis(&build_ssa(&vf, SsaStyle::Minimal).unwrap());
        let pruned = count_phis(&build_ssa(&vf, SsaStyle::Pruned).unwrap());
        assert_eq!(minimal, 1);
        assert_eq!(pruned, 0);
    }

    #[test]
    fn use_before_assignment_reads_zero() {
        // return u + 1 where u was never assigned.
        let mut vf = VarFunction::new("uz", &[]);
        let u = vf.add_var("u");
        vf.terminate(0, VarTerm::Return(add(v(u), c(1))));
        let f = build_ssa(&vf, SsaStyle::Minimal).unwrap();
        let r = Interpreter::new(&f).run(&[], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r, 1);
    }

    #[test]
    fn diamond_reassignment_gets_phi() {
        // t = 9; if (a < b) t = a; return t + t
        let mut vf = VarFunction::new("d", &["a", "b"]);
        let (a, b) = (vf.param_vars()[0], vf.param_vars()[1]);
        let t = vf.add_var("t");
        let (bt, j) = (vf.add_block(), vf.add_block());
        vf.assign(0, t, c(9));
        vf.terminate(0, VarTerm::Branch(cmp(CmpOp::Lt, v(a), v(b)), bt, j));
        vf.assign(bt, t, v(a));
        vf.terminate(bt, VarTerm::Jump(j));
        vf.terminate(j, VarTerm::Return(add(v(t), v(t))));
        let f = build_ssa(&vf, SsaStyle::Pruned).unwrap();
        pgvn_analysis::assert_ssa(&f);
        assert_eq!(count_phis(&f), 1);
        let interp = Interpreter::new(&f);
        let mut o = HashedOpaques::new(0);
        assert_eq!(interp.run(&[3, 5], &mut o).unwrap(), 6);
        assert_eq!(interp.run(&[7, 5], &mut o).unwrap(), 18);
    }

    #[test]
    fn unreachable_var_blocks_are_dropped() {
        let mut vf = VarFunction::new("u", &[]);
        let orphan = vf.add_block();
        vf.terminate(0, VarTerm::Return(c(4)));
        vf.terminate(orphan, VarTerm::Return(c(5)));
        let f = build_ssa(&vf, SsaStyle::Minimal).unwrap();
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn unterminated_reachable_block_errors() {
        let mut vf = VarFunction::new("bad", &[]);
        let b = vf.add_block();
        vf.terminate(0, VarTerm::Jump(b));
        match build_ssa(&vf, SsaStyle::Minimal) {
            Err(BuildError::UnterminatedBlock(x)) => assert_eq!(x, b),
            other => panic!("expected UnterminatedBlock, got {other:?}"),
        }
    }

    #[test]
    fn opaque_expressions_lowered() {
        let mut vf = VarFunction::new("o", &[]);
        let t = vf.add_var("t");
        vf.assign(0, t, VarExpr::Opaque(3));
        vf.terminate(0, VarTerm::Return(sub(v(t), v(t))));
        let f = build_ssa(&vf, SsaStyle::Minimal).unwrap();
        assert!(f.values().any(|v| matches!(f.kind(f.def(v)), InstKind::Opaque(3))));
        let r = Interpreter::new(&f).run(&[], &mut HashedOpaques::new(7)).unwrap();
        assert_eq!(r, 0);
    }

    #[test]
    fn nested_loops_execute_correctly() {
        // s = 0; for i in 0..a { for j in 0..b { s += 1 } } return s
        let mut vf = VarFunction::new("nest", &["a", "b"]);
        let (a, b) = (vf.param_vars()[0], vf.param_vars()[1]);
        let (i, j, s) = (vf.add_var("i"), vf.add_var("j"), vf.add_var("s"));
        let h1 = vf.add_block();
        let b1 = vf.add_block();
        let h2 = vf.add_block();
        let b2 = vf.add_block();
        let l1 = vf.add_block();
        let exit = vf.add_block();
        vf.assign(0, s, c(0));
        vf.assign(0, i, c(0));
        vf.terminate(0, VarTerm::Jump(h1));
        vf.terminate(h1, VarTerm::Branch(cmp(CmpOp::Lt, v(i), v(a)), b1, exit));
        vf.assign(b1, j, c(0));
        vf.terminate(b1, VarTerm::Jump(h2));
        vf.terminate(h2, VarTerm::Branch(cmp(CmpOp::Lt, v(j), v(b)), b2, l1));
        vf.assign(b2, s, add(v(s), c(1)));
        vf.assign(b2, j, add(v(j), c(1)));
        vf.terminate(b2, VarTerm::Jump(h2));
        vf.assign(l1, i, add(v(i), c(1)));
        vf.terminate(l1, VarTerm::Jump(h1));
        vf.terminate(exit, VarTerm::Return(v(s)));
        for style in [SsaStyle::Minimal, SsaStyle::SemiPruned, SsaStyle::Pruned] {
            let f = build_ssa(&vf, style).unwrap();
            pgvn_analysis::assert_ssa(&f);
            let r = Interpreter::new(&f).run(&[3, 4], &mut HashedOpaques::new(0)).unwrap();
            assert_eq!(r, 12, "{style:?}");
        }
    }
}

#[cfg(test)]
mod style_tests {
    use super::*;
    use crate::varfunc::expr::*;
    use pgvn_ir::CmpOp;

    fn count_phis(f: &Function) -> usize {
        f.values().filter(|&v| f.kind(f.def(v)).is_phi()).count()
    }

    #[test]
    fn semi_pruned_skips_block_local_variables() {
        // `local` is defined and fully consumed within single blocks on
        // both arms of a diamond, then redefined in the join: semi-pruned
        // SSA places no φ for it, while minimal SSA does.
        let mut vf = VarFunction::new("semi", &["p"]);
        let p = vf.param_vars()[0];
        let local = vf.add_var("local");
        let out = vf.add_var("out");
        let (t, e, j) = (vf.add_block(), vf.add_block(), vf.add_block());
        vf.terminate(0, VarTerm::Branch(cmp(CmpOp::Gt, v(p), c(0)), t, e));
        vf.assign(t, local, c(1));
        vf.assign(t, out, add(v(local), c(1)));
        vf.terminate(t, VarTerm::Jump(j));
        vf.assign(e, local, c(2));
        vf.assign(e, out, add(v(local), c(2)));
        vf.terminate(e, VarTerm::Jump(j));
        vf.terminate(j, VarTerm::Return(v(out)));
        let minimal = count_phis(&build_ssa(&vf, SsaStyle::Minimal).unwrap());
        let semi = count_phis(&build_ssa(&vf, SsaStyle::SemiPruned).unwrap());
        // Minimal places φs for both `local` and `out`; semi-pruned only
        // for `out` (the only variable used across block boundaries).
        assert_eq!(minimal, 2, "minimal: local + out");
        assert_eq!(semi, 1, "semi-pruned: out only");
    }

    #[test]
    fn all_styles_agree_semantically_on_branchy_code() {
        use pgvn_ir::{HashedOpaques, Interpreter};
        let mut vf = VarFunction::new("agree", &["a", "b"]);
        let (a, b) = (vf.param_vars()[0], vf.param_vars()[1]);
        let t = vf.add_var("t");
        let (bt, be, j) = (vf.add_block(), vf.add_block(), vf.add_block());
        vf.assign(0, t, c(0));
        vf.terminate(0, VarTerm::Branch(cmp(CmpOp::Le, v(a), v(b)), bt, be));
        vf.assign(bt, t, sub(v(b), v(a)));
        vf.terminate(bt, VarTerm::Jump(j));
        vf.assign(be, t, sub(v(a), v(b)));
        vf.terminate(be, VarTerm::Jump(j));
        vf.terminate(j, VarTerm::Return(v(t)));
        let args_sets: [[i64; 2]; 3] = [[3, 10], [10, 3], [4, 4]];
        let expected = [7, 7, 0];
        for style in [SsaStyle::Minimal, SsaStyle::SemiPruned, SsaStyle::Pruned] {
            let f = build_ssa(&vf, style).unwrap();
            for (args, want) in args_sets.iter().zip(expected) {
                let got = Interpreter::new(&f).run(args, &mut HashedOpaques::new(0)).unwrap();
                assert_eq!(got, want, "{style:?} {args:?}");
            }
        }
    }
}
