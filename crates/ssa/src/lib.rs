//! # pgvn-ssa — SSA construction
//!
//! Converts the mutable-variable IR ([`VarFunction`]) produced by front
//! ends into the SSA [`pgvn_ir::Function`] consumed by the GVN algorithm,
//! using Cytron-style φ placement at iterated dominance frontiers plus
//! renaming over the dominator tree.
//!
//! Three φ-placement styles are supported — [`SsaStyle::Minimal`],
//! [`SsaStyle::SemiPruned`] and [`SsaStyle::Pruned`] — because the paper
//! observes (§3) that pruned SSA can reduce the effectiveness of global
//! value numbering; the reproduction benchmarks that claim.
//!
//! ```
//! use pgvn_ssa::{VarFunction, VarTerm, SsaStyle, build_ssa};
//! use pgvn_ssa::expr::*;
//! use pgvn_ir::CmpOp;
//!
//! // max(a, b)
//! let mut vf = VarFunction::new("max", &["a", "b"]);
//! let (a, b) = (vf.param_vars()[0], vf.param_vars()[1]);
//! let r = vf.add_var("r");
//! let (bt, be, j) = (vf.add_block(), vf.add_block(), vf.add_block());
//! vf.terminate(0, VarTerm::Branch(cmp(CmpOp::Gt, v(a), v(b)), bt, be));
//! vf.assign(bt, r, v(a));
//! vf.terminate(bt, VarTerm::Jump(j));
//! vf.assign(be, r, v(b));
//! vf.terminate(be, VarTerm::Jump(j));
//! vf.terminate(j, VarTerm::Return(v(r)));
//!
//! let f = build_ssa(&vf, SsaStyle::Pruned)?;
//! pgvn_ir::verify(&f).unwrap();
//! # Ok::<(), pgvn_ssa::BuildError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod liveness;
pub mod varfunc;

pub use build::{build_ssa, BuildError, SsaStyle};
pub use liveness::Liveness;
pub use varfunc::{expr, Var, VarBlock, VarExpr, VarFunction, VarStmt, VarTerm};
