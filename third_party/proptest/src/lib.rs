//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its tests use: the [`Strategy`] trait
//! with `prop_map`, range / tuple / `collection::vec` / `array::uniform5`
//! / `sample::select` strategies, [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! macros.
//!
//! Semantics deliberately kept from upstream: deterministic generation
//! (every run draws the same cases, seeded per test from the test name),
//! a configurable case count, and failure messages that include the case
//! number. Omitted: shrinking, regression-file persistence and the
//! rejection machinery — failures report the first failing case as-is.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A deterministic random source for strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($fname:ident, $n:expr) => {
            /// Generates arrays whose elements all come from `element`.
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }

    /// A strategy for `[T; N]`.
    #[derive(Clone, Debug)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    uniform!(uniform2, 2);
    uniform!(uniform3, 3);
    uniform!(uniform4, 4);
    uniform!(uniform5, 5);
    uniform!(uniform8, 8);
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy choosing uniformly among the elements of a slice.
    #[derive(Clone, Debug)]
    pub struct Select<'a, T> {
        options: &'a [T],
    }

    /// Chooses one of `options`, cloned.
    pub fn select<T: Clone>(options: &[T]) -> Select<'_, T> {
        assert!(!options.is_empty(), "select over an empty slice");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<'_, T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Runner configuration (the subset the workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// An explicit test-case failure, for bodies that `return Err(...)` or
/// use `?` with `map_err(TestCaseError::fail)`.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError { reason: reason.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Stable per-test seed: FNV-1a over the test's module path and name, so
/// every run of a given test draws the same cases.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines deterministic property tests over [`Strategy`] draws.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_prop(x in 0i64..10, v in collection::vec(0u32..5, 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let detail = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!(
                            concat!("  ", stringify!($arg), " = {:?}\n"), &$arg));)+
                        s
                    };
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            panic!(
                                "proptest case {}/{} of {} failed: {}\ninputs:\n{}",
                                case + 1, config.cases, stringify!($name), e, detail
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest case {}/{} of {} failed with inputs:\n{}",
                                case + 1, config.cases, stringify!($name), detail
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let strat = (0i64..100, crate::collection::vec(0u32..7, 1..5));
        let mut a = crate::TestRng::seed_from_u64(5);
        let mut b = crate::TestRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn select_and_arrays_cover_options() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let opts = [10i64, 20, 30];
        let strat = crate::sample::select(&opts[..]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
        let arr = crate::array::uniform5(-3i64..4).generate(&mut rng);
        assert!(arr.iter().all(|x| (-3..4).contains(x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_and_draws_in_range(x in -5i64..6, pair in (0u32..3, 0usize..2)) {
            prop_assert!((-5..6).contains(&x));
            prop_assert!(pair.0 < 3 && pair.1 < 2);
        }

        /// Doc comments before cases are accepted, like upstream.
        #[test]
        fn mapped_strategies_apply(f in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(f % 2, 0);
            prop_assert_ne!(f, 19);
        }
    }
}
