//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up,
//! then timed over enough iterations to fill a fixed measurement window,
//! and the mean with min/max per-iteration time is printed in a
//! criterion-like format. Environment overrides:
//! `PGVN_BENCH_MEASURE_MS` (default 300) and `PGVN_BENCH_WARMUP_MS`
//! (default 100) trade precision for wall-clock time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    /// (iterations, total elapsed) of the measurement phase.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warmup;
        let mut once = Duration::from_nanos(1);
        while Instant::now() < warm_until {
            let t = Instant::now();
            black_box(f());
            once = t.elapsed().max(Duration::from_nanos(1));
        }
        // Batch iterations so the clock is read ~1000 times at most.
        let per_batch = (self.measure.as_nanos() / 1000 / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < self.measure {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += per_batch;
        }
        self.result = Some((iters, total));
    }
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(std::env::var(var).ok().and_then(|s| s.parse().ok()).unwrap_or(default))
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measure: env_ms("PGVN_BENCH_MEASURE_MS", 300),
        warmup: env_ms("PGVN_BENCH_WARMUP_MS", 100),
        result: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match b.result {
        Some((iters, total)) if iters > 0 => {
            let mean = total / iters.max(1) as u32;
            let mut line = format!("{label:<50} time: [{}]  ({iters} iterations)", fmt_time(mean));
            if let Some(Throughput::Elements(n)) = throughput {
                let per_sec = n as f64 / mean.as_secs_f64();
                line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
            }
            println!("{line}");
        }
        _ => println!("{label:<50} (no measurement recorded)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.to_string(), self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(Some(&self.name), id, self.throughput, f);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), throughput: None, _criterion: self }
    }

    /// Benchmarks `f` at the top level.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(None, id, None, f);
        self
    }
}

/// Declares a group of benchmark functions, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; honour the
            // conventional `--test` no-op so `cargo test` stays green.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("PGVN_BENCH_MEASURE_MS", "5");
        std::env::set_var("PGVN_BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
