//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny subset of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] helpers
//! `gen`, `gen_bool` and `gen_range`. The generator is xoshiro256**
//! seeded through SplitMix64 — high-quality and stable across platforms,
//! which is all the workload generator needs (equal seeds must generate
//! equal routines; no compatibility with upstream `rand` streams is
//! promised or required).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A type that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw; the tiny modulo bias of a
                // 64-bit draw over small spans is irrelevant here.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with a
    /// SplitMix64-expanded seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..5usize);
            assert!(y < 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
