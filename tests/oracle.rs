//! Replay tests for the committed oracle regression fixtures.
//!
//! Every `.pgvn` file under `tests/fixtures/oracle/` is a self-contained
//! shrunken routine (comment header + source) that once exposed a
//! miscompile. Each must now validate cleanly under every honest
//! configuration; the injected-bug fixture must additionally *fail* when
//! the `debug_miscompile` knob is on, proving the validator still catches
//! the class of bug it was minted from.

use pgvn::core::GvnConfig;
use pgvn::lang::compile;
use pgvn::oracle::{validate_function, ValidatorOptions};
use pgvn::ssa::SsaStyle;

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/oracle")
}

fn fixtures() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "pgvn") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("fixture readable");
            out.push((name, src));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no fixtures under tests/fixtures/oracle/");
    out
}

#[test]
fn all_fixtures_validate_cleanly() {
    for (name, src) in fixtures() {
        let func = compile(&src, SsaStyle::Pruned)
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let opts = ValidatorOptions::default();
        if let Err(f) = validate_function(&func, &opts) {
            panic!("{name} regressed under config {:?}: {f:?}", f.config());
        }
    }
}

#[test]
fn phi_predication_fixture_survives_every_mode_and_seed() {
    // The real bug this fixture was shrunk from only manifested in
    // pessimistic mode (a decided branch keeps both edges reachable
    // there); give it extra input seeds for good measure.
    let (_, src) = fixtures()
        .into_iter()
        .find(|(n, _)| n.starts_with("phi-pred"))
        .expect("phi-pred fixture present");
    let func = compile(&src, SsaStyle::Pruned).expect("compiles");
    for seed in 0..8 {
        let opts = ValidatorOptions { input_seed: seed, ..ValidatorOptions::default() };
        validate_function(&func, &opts)
            .unwrap_or_else(|f| panic!("seed {seed}, config {:?}: {f:?}", f.config()));
    }
}

#[test]
fn lattice_fixture_documents_the_value_inference_caveat() {
    // §2.7: value inference "cannot be guaranteed" monotone — and the
    // regression below shows the loss reaching reachability. The default
    // relations (which claim full ⊒ click only with value inference off)
    // must hold; the over-strong claim (full-with-VI ⊒ click on
    // reachability) must be *detected* as violated, or this fixture has
    // stopped demonstrating anything.
    use pgvn::oracle::{check_lattice, default_relations, Relation};

    let (_, src) = fixtures()
        .into_iter()
        .find(|(n, _)| n.starts_with("lattice"))
        .expect("lattice fixture present");
    let func = compile(&src, SsaStyle::Pruned).expect("compiles");
    check_lattice(&func, &default_relations())
        .unwrap_or_else(|v| panic!("{} ⊒ {} regressed: {}", v.stronger, v.weaker, v.detail));

    let over_strong = Relation {
        stronger: ("full".to_string(), GvnConfig::full()),
        weaker: ("click".to_string(), GvnConfig::click()),
        congruences: false,
        constants: false,
        reachability: true,
    };
    let v = check_lattice(&func, &[over_strong])
        .expect_err("the fixture must still exhibit the §2.7 reachability loss");
    assert!(v.detail.contains("unreachable under the weaker config only"), "{}", v.detail);
}

#[test]
fn injected_bug_fixture_still_trips_the_validator() {
    let (_, src) = fixtures()
        .into_iter()
        .find(|(n, _)| n.starts_with("injected"))
        .expect("injected fixture present");
    let func = compile(&src, SsaStyle::Pruned).expect("compiles");
    let opts = ValidatorOptions {
        configs: vec![("injected-bug".to_string(), GvnConfig::full().miscompile(true))],
        ..ValidatorOptions::default()
    };
    let f = validate_function(&func, &opts)
        .expect_err("the miscompile knob must be caught by the validator");
    assert_eq!(f.config(), "injected-bug");
}
