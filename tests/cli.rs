//! End-to-end tests of the `pgvn` command-line driver.

use std::io::Write;
use std::process::{Command, Stdio};

fn pgvn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pgvn"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pgvn-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write source");
    path
}

#[test]
fn optimizes_and_runs_a_file() {
    let path = write_temp("basic.pg", "routine f(a, b) { x = a + b; y = b + a; return x - y; }");
    let out = pgvn()
        .arg(&path)
        .args(["--emit", "all", "--run", "3,4", "--stats"])
        .output()
        .expect("spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("== ssa =="), "{stdout}");
    assert!(stdout.contains("== analysis =="), "{stdout}");
    assert!(stdout.contains("== optimized =="), "{stdout}");
    assert!(stdout.contains("result: 0"), "{stdout}");
    assert!(stdout.contains("constants propagated"), "{stdout}");
}

#[test]
fn reads_from_stdin() {
    let mut child = pgvn()
        .args(["-", "--emit", "analysis"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"routine g() { if (1 > 2) { return 5; } return 7; }")
        .expect("writes");
    let out = child.wait_with_output().expect("completes");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("unreachable block"), "{stdout}");
}

#[test]
fn parse_errors_are_reported() {
    let path = write_temp("broken.pg", "routine f( { return 0; }");
    let out = pgvn().arg(&path).output().expect("spawns");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = pgvn().arg("/nonexistent/nope.pg").output().expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn config_and_mode_flags_accepted() {
    let path = write_temp("cfg.pg", "routine f(a) { return a - a; }");
    for cfg in ["full", "extended", "click", "sccp", "awz", "basic"] {
        let out = pgvn()
            .arg(&path)
            .args(["--config", cfg, "--mode", "balanced", "--variant", "complete", "--run", "9"])
            .output()
            .expect("spawns");
        assert!(out.status.success(), "--config {cfg}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("result: 0"));
    }
}

#[test]
fn dense_and_ssa_flags_accepted() {
    let path = write_temp(
        "flags.pg",
        "routine f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
    );
    for ssa in ["minimal", "semi-pruned", "pruned"] {
        let out = pgvn()
            .arg(&path)
            .args(["--ssa", ssa, "--dense", "--run", "5"])
            .output()
            .expect("spawns");
        assert!(out.status.success(), "--ssa {ssa}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("result: 10"));
    }
}

#[test]
fn figure1_via_cli_collapses_to_one() {
    let path = write_temp("figure1.pg", pgvn_lang::fixtures::FIGURE1);
    let out = pgvn().arg(&path).args(["--run", "5,5,9"]).output().expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("result: 1"), "{stdout}");
}

#[test]
fn stats_json_emits_one_well_formed_object() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let path = write_temp(
        "statsjson.pg",
        "routine f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
    );
    let out = pgvn().arg(&path).arg("--stats-json").output().expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("{\"routine\""))
        .unwrap_or_else(|| panic!("no stats-json line in: {stdout}"));
    let v = parse(line).expect("stats-json line parses as JSON");

    assert_eq!(v.get("routine").and_then(JsonValue::as_str), Some("f"));
    let stats = v.get("stats").expect("has a stats object");
    for field in [
        "passes",
        "insts_processed",
        "touches",
        "value_inference_visits",
        "predicate_inference_visits",
        "phi_predication_visits",
        "num_insts",
        "hash_cons_hits",
        "hash_cons_misses",
        "interned_exprs",
        "class_merges",
        "reassoc_cap_hits",
        "vi_gate_skips",
        "pi_gate_skips",
        "vi_cache_hits",
        "pi_cache_hits",
    ] {
        assert!(
            stats.get(field).and_then(JsonValue::as_u64).is_some(),
            "stats.{field} missing or not an unsigned integer in: {line}"
        );
    }
    assert_eq!(stats.get("converged").and_then(JsonValue::as_bool), Some(true));
    assert!(stats.get("passes").and_then(JsonValue::as_u64).unwrap() >= 1);

    let strength = v.get("strength").expect("has a strength object");
    for field in ["unreachable_values", "constant_values", "congruence_classes"] {
        assert!(
            strength.get(field).and_then(JsonValue::as_u64).is_some(),
            "strength.{field} missing in: {line}"
        );
    }

    // The degradation-ladder record: a healthy routine commits on the
    // strongest rung with zero failures, and the ladder counters are
    // mirrored into the stats object.
    let res = v.get("resilience").expect("has a resilience object");
    assert_eq!(res.get("outcome").and_then(JsonValue::as_str), Some("optimized"), "{line}");
    assert_eq!(res.get("rung").and_then(JsonValue::as_str), Some("full"), "{line}");
    assert_eq!(stats.get("outcome").and_then(JsonValue::as_str), Some("converged"), "{line}");
    let ladder = res.get("stats").expect("resilience embeds the committed rung's stats");
    assert_eq!(ladder.get("ladder_rung").and_then(JsonValue::as_u64), Some(0), "{line}");
    assert_eq!(ladder.get("ladder_failures").and_then(JsonValue::as_u64), Some(0), "{line}");
}

#[test]
fn trace_json_writes_parseable_jsonl() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let path =
        write_temp("tracejson.pg", "routine f(a, b) { x = a + b; y = b + a; return x - y; }");
    let trace = std::env::temp_dir().join("pgvn-cli-tests").join("trace.jsonl");
    let out = pgvn()
        .arg(&path)
        .args(["--trace-json", trace.to_str().unwrap(), "--profile"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&trace).expect("trace file written");
    let events: Vec<_> = body
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect();
    assert!(!events.is_empty());
    let kind = |ev: &pgvn::telemetry::json::JsonValue| {
        ev.get("event").and_then(JsonValue::as_str).map(str::to_owned)
    };
    // The CLI traces the analysis run plus two pipeline rounds; each run
    // is delimited and contains at least one pass, and profiling adds
    // phase events.
    assert_eq!(events.iter().filter(|e| kind(e).as_deref() == Some("run_start")).count(), 3);
    assert_eq!(events.iter().filter(|e| kind(e).as_deref() == Some("run_end")).count(), 3);
    assert!(events.iter().any(|e| kind(e).as_deref() == Some("pass_end")));
    assert!(events.iter().any(|e| kind(e).as_deref() == Some("phase")));
}

#[test]
fn bad_flags_exit_with_usage() {
    let out = pgvn().args(["file.pg", "--config", "bogus"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn fuzz_clean_campaign_exits_zero() {
    let out = pgvn()
        .args(["fuzz", "--seed", "11", "--iters", "25", "--mode", "both"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("25 iterations"), "{stdout}");
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
}

#[test]
fn fuzz_injected_bug_fails_with_report_and_fixture() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let dir = std::env::temp_dir().join("pgvn-cli-tests").join("fuzz-out");
    let report = dir.join("failures.jsonl");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = pgvn()
        .args(["fuzz", "--seed", "5", "--iters", "20", "--mode", "validate"])
        .args(["--inject-bug", "--max-failures", "1"])
        .args(["--report", report.to_str().unwrap()])
        .args(["--fixture-dir", dir.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1), "injected bug must fail the campaign");
    assert!(String::from_utf8_lossy(&out.stderr).contains("FAILURE"));

    // The JSONL report: one failure record plus the summary record.
    let body = std::fs::read_to_string(&report).expect("report written");
    let events: Vec<_> = body
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect();
    let kind = |ev: &pgvn::telemetry::json::JsonValue| {
        ev.get("event").and_then(JsonValue::as_str).map(str::to_owned)
    };
    assert!(events.iter().any(|e| kind(e).as_deref() == Some("fuzz_failure")));
    let summary =
        events.iter().find(|e| kind(e).as_deref() == Some("fuzz_summary")).expect("summary record");
    assert_eq!(summary.get("failures").and_then(JsonValue::as_u64), Some(1));

    // The fixture: a `.pgvn` file that recompiles and replays.
    let fixture = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "pgvn"))
        .expect("a .pgvn fixture was written");
    let src = std::fs::read_to_string(fixture.path()).expect("fixture readable");
    pgvn::lang::compile(&src, pgvn::ssa::SsaStyle::Pruned).expect("fixture compiles");
}

#[test]
fn fuzz_bad_flags_exit_with_usage() {
    let out = pgvn().args(["fuzz", "--mode", "bogus"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn fuzz"));
}

#[test]
fn io_and_parse_errors_exit_two_without_backtrace() {
    // Malformed source: one-line diagnostic, exit code 2.
    let path = write_temp("exit2.pg", "routine f( { return 0; }");
    let out = pgvn().arg(&path).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "no panic backtrace: {stderr}");

    // Unreadable input path.
    let out = pgvn().arg("/nonexistent/nope.pg").output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));

    // Unwritable --trace-json path.
    let good = write_temp("exit2-good.pg", "routine f(a) { return a; }");
    let out = pgvn()
        .arg(&good)
        .args(["--trace-json", "/nonexistent-dir/trace.jsonl"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot create"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");

    // Unwritable batch report path.
    let out = pgvn()
        .args(["batch", "--gen", "1", "--report", "/nonexistent-dir/report.jsonl"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn injected_fault_degrades_but_still_succeeds() {
    let path = write_temp("inject.pg", pgvn_lang::fixtures::FIGURE1);
    let out = pgvn()
        .arg(&path)
        .args(["--stats", "--inject", "invariant@eval", "--inject-seed", "2002"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ladder rung:           1"), "{stdout}");
    assert!(stdout.contains("ladder failures:       1"), "{stdout}");
}

#[test]
fn batch_generated_suite_writes_a_full_jsonl_report() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let report = std::env::temp_dir().join("pgvn-cli-tests").join("batch.jsonl");
    std::fs::create_dir_all(report.parent().unwrap()).expect("temp dir");
    let out = pgvn()
        .args(["batch", "--gen", "6", "--seed", "2002"])
        .args(["--inject", "invariant@eval", "--inject-seed", "2002"])
        .args(["--report", report.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&report).expect("report written");
    let events: Vec<_> = body
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect();
    let kind = |ev: &pgvn::telemetry::json::JsonValue| {
        ev.get("event").and_then(JsonValue::as_str).map(str::to_owned)
    };
    let routines: Vec<_> =
        events.iter().filter(|e| kind(e).as_deref() == Some("routine")).collect();
    assert_eq!(routines.len(), 6, "one record per generated routine");
    for r in &routines {
        assert_eq!(r.get("status").and_then(JsonValue::as_str), Some("classified"));
        let res = r.get("resilience").expect("routine record embeds the resilience report");
        let outcome = res.get("outcome").and_then(JsonValue::as_str).expect("outcome");
        assert!(outcome == "optimized" || outcome == "identity", "{outcome}");
    }
    let summary =
        events.iter().find(|e| kind(e).as_deref() == Some("batch_summary")).expect("summary");
    assert_eq!(summary.get("routines").and_then(JsonValue::as_u64), Some(6));
    assert_eq!(summary.get("escaped_panics").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(summary.get("rejected").and_then(JsonValue::as_u64), Some(0));
}

#[test]
fn batch_isolates_sticky_panics_per_routine() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let out = pgvn()
        .args(["batch", "--gen", "4", "--seed", "7"])
        .args(["--inject", "panic@eval", "--inject-sticky"])
        .output()
        .expect("spawns");
    // Every routine degrades to verified identity; the batch completes
    // and no backtrace reaches stderr.
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("stack backtrace"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .filter_map(|l| parse(l).ok())
        .find(|e| e.get("event").and_then(JsonValue::as_str) == Some("batch_summary"))
        .expect("summary record on stdout");
    assert_eq!(summary.get("identity").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(summary.get("escaped_panics").and_then(JsonValue::as_u64), Some(0));
}

#[test]
fn batch_reports_malformed_inputs_and_fails() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let dir = std::env::temp_dir().join("pgvn-cli-tests").join("batch-dir");
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("good.pgvn"), "routine f(a) { return a + a; }").expect("write");
    std::fs::write(dir.join("broken.pgvn"), "routine f( {").expect("write");
    let out = pgvn().args(["batch", "--dir", dir.to_str().unwrap()]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(1), "a malformed input fails the batch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let statuses: Vec<String> = stdout
        .lines()
        .filter_map(|l| parse(l).ok())
        .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("routine"))
        .filter_map(|e| e.get("status").and_then(JsonValue::as_str).map(str::to_owned))
        .collect();
    assert!(statuses.contains(&"classified".to_string()), "{stdout}");
    assert!(statuses.contains(&"input_error".to_string()), "{stdout}");
}

#[test]
fn batch_bad_flags_exit_with_usage() {
    for bad in [&["batch"][..], &["batch", "--gen", "x"], &["batch", "--inject", "bogus@eval"]] {
        let out = pgvn().args(bad).output().expect("spawns");
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
    let out = pgvn().args(["batch", "--bogus"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn batch"));
}

#[test]
fn batch_parallel_report_and_stats_match_sequential() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let dir = std::env::temp_dir().join("pgvn-cli-tests").join("batch-jobs");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run = |jobs: &str, tag: &str| {
        let report = dir.join(format!("report-{tag}.jsonl"));
        let stats = dir.join(format!("stats-{tag}.jsonl"));
        let out = pgvn()
            .args(["batch", "--gen", "10", "--seed", "2002", "--jobs", jobs])
            .args(["--report", report.to_str().unwrap()])
            .args(["--stats-json", stats.to_str().unwrap()])
            .output()
            .expect("spawns");
        assert!(out.status.success(), "--jobs {jobs}: {}", String::from_utf8_lossy(&out.stderr));
        (
            std::fs::read(&report).expect("report written"),
            std::fs::read(&stats).expect("stats written"),
        )
    };
    let (report1, stats1) = run("1", "seq");
    let (report4, stats4) = run("4", "par");
    // The whole point of the deterministic sharding: byte-identical
    // JSONL report and merged statistics at any worker count.
    assert_eq!(report1, report4, "parallel batch report must be byte-identical");
    assert_eq!(stats1, stats4, "merged stats must be byte-identical");

    // The merged-stats record is well formed and aggregates all routines.
    let body = String::from_utf8(stats1).expect("utf-8");
    let v = parse(body.trim()).expect("stats record parses");
    assert_eq!(v.get("event").and_then(JsonValue::as_str), Some("batch_stats"));
    assert_eq!(v.get("routines").and_then(JsonValue::as_u64), Some(10));
    let gvn = v.get("gvn_stats").expect("embeds the merged GvnStats");
    assert!(gvn.get("passes").and_then(JsonValue::as_u64).unwrap() >= 10);
    assert_eq!(gvn.get("converged").and_then(JsonValue::as_bool), Some(true));
}

#[test]
fn batch_timings_flag_adds_wall_nanos_without_breaking_determinism() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let run = |extra: &[&str]| {
        let out = pgvn()
            .args(["batch", "--gen", "5", "--seed", "2002", "--jobs", "2"])
            .args(extra)
            .output()
            .expect("spawns");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).expect("utf-8")
    };
    // Default output carries no wall-clock field (that would forfeit
    // byte-identity across --jobs); --timings opts in per record.
    let plain = run(&[]);
    assert!(!plain.contains("wall_nanos"), "{plain}");
    let timed = run(&["--timings"]);
    let mut timed_routines = 0;
    for line in timed.lines() {
        let v = parse(line).expect("every line parses");
        if v.get("event").and_then(JsonValue::as_str) == Some("routine") {
            timed_routines += 1;
            assert!(
                v.get("wall_nanos").and_then(JsonValue::as_u64).is_some(),
                "--timings adds wall_nanos: {line}"
            );
            assert!(v.get("metrics").is_some(), "stable metrics delta stays present: {line}");
        }
    }
    assert_eq!(timed_routines, 5);
    // --timings also surfaces the shared timing-domain registry as one
    // batch_timing record (absent from the deterministic default).
    assert!(!plain.contains("batch_timing"), "{plain}");
    assert!(
        timed.lines().any(|l| {
            let v = parse(l).expect("every line parses");
            v.get("event").and_then(JsonValue::as_str) == Some("batch_timing")
                && v.get("metrics").is_some()
        }),
        "{timed}"
    );
    // Stripping the opt-in additions recovers the deterministic lines.
    let stripped: Vec<String> = timed
        .lines()
        .filter(|l| !l.contains("\"batch_timing\""))
        .map(|l| match l.find(",\"wall_nanos\":") {
            Some(i) => format!("{}}}", &l[..i]),
            None => l.to_string(),
        })
        .collect();
    assert_eq!(plain.trim(), stripped.join("\n"));
}

#[test]
fn batch_parallel_isolates_injected_faults_deterministically() {
    let run = |jobs: &str| {
        let out = pgvn()
            .args(["batch", "--gen", "6", "--seed", "7", "--jobs", jobs])
            .args(["--inject", "panic@eval", "--inject-sticky"])
            .output()
            .expect("spawns");
        assert!(out.status.success(), "--jobs {jobs}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("stack backtrace"), "{stderr}");
        out.stdout
    };
    assert_eq!(run("1"), run("4"), "fault classification must not depend on worker count");
}

#[test]
fn check_clean_file_and_generated_corpus_exit_zero() {
    let path = write_temp("check-clean.pgvn", "routine c(a, b) { return a + b; }");
    // An explicit clean file plus a generated corpus: no error-severity
    // diagnostic anywhere, so the run exits 0 even though the generated
    // routines surface warnings and advisories.
    let out = pgvn()
        .args(["check", path.to_str().unwrap(), "--gen", "25", "--seed", "2002", "--json"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout.lines().last().expect("summary line");
    assert!(summary.contains("\"event\":\"check_summary\""), "{summary}");
    assert!(summary.contains("\"files\":26"), "{summary}");
    assert!(summary.contains("\"errors\":0"), "{summary}");
}

#[test]
fn check_json_flags_unparseable_input_and_exits_one() {
    use pgvn::telemetry::json::{parse, JsonValue};

    let path = write_temp("check-broken.pgvn", "routine oops {");
    let out = pgvn().args(["check", path.to_str().unwrap(), "--json"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(1), "error diagnostics exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let record = stdout
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .find(|v| v.get("event").and_then(JsonValue::as_str) == Some("check"))
        .expect("per-file check record");
    assert_eq!(record.get("errors").and_then(JsonValue::as_u64), Some(1), "{stdout}");
    assert!(stdout.contains("\"code\":\"parse_error\""), "{stdout}");
    assert!(stdout.contains("\"flagged\":1"), "{stdout}");
}

#[test]
fn check_text_mode_reports_advisories_without_failing() {
    let path =
        write_temp("check-dup.pgvn", "routine dup(a, b) { x = a + b; y = a + b; return x * y; }");
    let out = pgvn().args(["check", path.to_str().unwrap()]).output().expect("spawns");
    assert!(out.status.success(), "advisories never fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("advisory[missed_redundancy]"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pgvn check: 1 file(s), 1 flagged"), "{stderr}");
}

#[test]
fn check_bad_flags_exit_with_usage() {
    // No inputs at all, and an unknown flag: both usage errors.
    for bad in [&["check"][..], &["check", "--bogus"]] {
        let out = pgvn().args(bad).output().expect("spawns");
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn check"));
    }
    // An unreadable --dir is an I/O error (distinct from a missing
    // file argument, which classifies as parse_error and exits 1).
    let out = pgvn().args(["check", "--dir", "/nonexistent/nope"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn single_routine_check_gate_passes_on_clean_input() {
    let path =
        write_temp("check-gate.pg", "routine f(a, b) { x = a + b; y = b + a; return x - y; }");
    let out = pgvn().arg(&path).args(["--check", "--run", "3,4"]).output().expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("result: 0"));
}

#[test]
fn readme_documents_the_exit_code_table() {
    // The README's exit-code table is the contract the CLI tests in
    // this file (plus tests/perf.rs and tests/serve.rs) pin down; keep
    // every surface listed so the docs cannot drift from the binary.
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md at the workspace root");
    for surface in [
        "`pgvn <file>`",
        "`pgvn check`",
        "`pgvn batch`",
        "`pgvn fuzz`",
        "`pgvn perf --compare`",
        "`pgvn serve`",
        "`pgvn serve-load`",
    ] {
        assert!(
            readme.contains(&format!("| {surface} |")),
            "README exit-code table is missing a row for {surface}"
        );
    }
}

#[test]
fn serve_stdio_answers_framed_requests_and_drains_on_eof() {
    let mut child = pgvn()
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        for payload in [
            br#"{"id":1,"op":"ping"}"#.as_slice(),
            br#"{"id":2,"gen_seed":11}"#.as_slice(),
            br#"{"id":3,"routine":"routine f(a, b) { x = a + b; y = b + a; return x - y; }"}"#
                .as_slice(),
        ] {
            stdin.write_all(&(payload.len() as u32).to_le_bytes()).expect("frame length");
            stdin.write_all(payload).expect("frame payload");
        }
    }
    drop(child.stdin.take()); // EOF starts the drain
    let out = child.wait_with_output().expect("completes");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    // Decode the framed responses off stdout.
    let mut buf = out.stdout.as_slice();
    let mut replies = Vec::new();
    while buf.len() >= 4 {
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        let payload = std::str::from_utf8(&buf[4..4 + len]).expect("UTF-8 response");
        replies.push(payload.to_string());
        buf = &buf[4 + len..];
    }
    assert!(buf.is_empty(), "no trailing bytes after the last frame");
    assert_eq!(replies.len(), 3, "{replies:?}");
    assert_eq!(replies.iter().filter(|r| r.contains("\"reply\":\"pong\"")).count(), 1);
    assert_eq!(replies.iter().filter(|r| r.contains("\"reply\":\"record\"")).count(), 2);
    assert!(stderr.contains("serve_summary"), "{stderr}");
}

#[test]
fn serve_rejects_bad_flags_with_usage() {
    let out = pgvn().args(["serve", "--sideways"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn serve"));
    let out = pgvn().args(["serve", "--workers"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2), "a flag missing its value also exits 2");
}

#[test]
fn serve_load_smoke_is_clean_and_reports_latency() {
    let out = pgvn()
        .args(["serve-load", "--clients", "2", "--routines", "5"])
        .args(["--workers-curve", "1,2", "--seed", "9", "--check-batch"])
        .output()
        .expect("spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "one report per workers-curve point: {stdout}");
    for line in &lines {
        assert!(line.contains("\"event\":\"serve_load\""), "{line}");
        assert!(line.contains("\"dropped\":0"), "{line}");
        assert!(line.contains("\"mismatches\":0"), "{line}");
        assert!(line.contains("\"p99_nanos\""), "{line}");
        assert!(line.contains("\"routines_per_sec\""), "{line}");
    }
    assert!(stderr.contains("p50"), "{stderr}");
}

#[test]
fn serve_load_bad_flags_exit_with_usage() {
    let out = pgvn().args(["serve-load", "--fault", "sideways"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn serve-load"));
}

#[test]
fn serve_socket_mode_serves_and_shuts_down_over_the_wire() {
    let sock = std::env::temp_dir().join(format!("pgvn-cli-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut child = pgvn()
        .args(["serve", "--socket"])
        .arg(&sock)
        .args(["--workers", "1"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    // Wait for the socket to come up.
    let mut stream = None;
    for _ in 0..250 {
        match std::os::unix::net::UnixStream::connect(&sock) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let mut stream = stream.expect("server socket came up");
    let mut send = |payload: &[u8]| {
        stream.write_all(&(payload.len() as u32).to_le_bytes()).expect("frame length");
        stream.write_all(payload).expect("frame payload");
    };
    send(br#"{"id":1,"gen_seed":5,"inject":"panic@eval","inject_sticky":true}"#);
    send(br#"{"id":2,"op":"shutdown"}"#);
    let mut responses = Vec::new();
    loop {
        use std::io::Read;
        let mut len = [0u8; 4];
        match stream.read_exact(&mut len) {
            Ok(()) => {}
            Err(_) => break, // server drained and closed
        }
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut payload).expect("frame payload");
        responses.push(String::from_utf8(payload).expect("UTF-8 response"));
    }
    let out = child.wait().expect("child exits");
    assert!(out.success(), "serve --socket exits 0 after a protocol shutdown");
    assert!(!sock.exists(), "socket file is removed on exit");
    assert!(
        responses.iter().any(|r| r.contains("\"reply\":\"record\"")),
        "the injected-panic request was still answered: {responses:?}"
    );
    assert!(responses.iter().any(|r| r.contains("\"reply\":\"shutting_down\"")), "{responses:?}");
}
