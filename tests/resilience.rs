//! The fault-injection self-check demanded by the robustness PR: for
//! every fault class, an injected failure must end in a *classified*
//! outcome, the function the caller holds must pass the IR verifier,
//! translation validation must agree with the original, and no panic
//! may cross the `optimize_resilient` API boundary.

use pgvn::core::{try_run, FaultKind, FaultPlan, FaultSite, GvnBudget, GvnError, RunOutcome};
use pgvn::ir::verify;
use pgvn::oracle::{validate_optimized, ValidatorOptions};
use pgvn::prelude::*;
use pgvn::transform::{ResilientOutcome, RungId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// The seed the CI fault matrix runs under.
const MATRIX_SEED: u64 = 2002;

fn sample() -> Function {
    compile(pgvn::lang::fixtures::FIGURE1, SsaStyle::Pruned).unwrap()
}

fn looping() -> Function {
    compile(
        "routine f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        SsaStyle::Pruned,
    )
    .unwrap()
}

/// Cheap validator tuning for the per-test translation-validation gate.
fn quick_validator() -> ValidatorOptions {
    ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() }
}

/// The site each fault class is injected at in the CI matrix.
fn matrix_site(kind: FaultKind) -> FaultSite {
    match kind {
        FaultKind::Panic | FaultKind::Invariant => FaultSite::Eval,
        FaultKind::Budget => FaultSite::Edges,
        FaultKind::VerifierReject => FaultSite::Rewrite,
    }
}

#[test]
fn every_fault_class_is_contained_classified_and_validated() {
    // Injected panics are classified at the ladder's catch_unwind
    // boundary; keep their default-hook backtraces out of test output.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for kind in FaultKind::ALL {
        let plan = FaultPlan::new(kind, matrix_site(kind)).seeded(MATRIX_SEED);
        let original = sample();
        let mut optimized = original.clone();
        let pipeline = Pipeline::new(GvnConfig::full().fault_plan(Some(plan))).rounds(2);
        // No panic crosses the API boundary: the call itself must return.
        let rep = catch_unwind(AssertUnwindSafe(|| pipeline.optimize_resilient(&mut optimized)))
            .unwrap_or_else(|_| panic!("panic escaped optimize_resilient for {plan}"));
        // Classified outcome with a usable function.
        assert!(rep.is_usable(), "{plan}: outcome {:?}", rep.outcome);
        // A non-sticky fault is transient: exactly one rung fails with
        // the injected class, then the ladder recovers one rung down.
        // (A seeded rewrite-site countdown may outlast the rounds for
        // the panic/invariant/budget kinds, which is why the matrix
        // pins those to analysis sites.)
        assert_eq!(rep.outcome, ResilientOutcome::Optimized(RungId::Practical), "{plan}");
        assert_eq!(rep.failures.len(), 1, "{plan}");
        assert_eq!(rep.failures[0].rung, RungId::Full, "{plan}");
        let expected_kind = match kind {
            FaultKind::Panic => "panicked",
            FaultKind::Invariant => "internal_invariant",
            FaultKind::Budget => "budget_exceeded",
            FaultKind::VerifierReject => "verifier_rejected",
        };
        assert_eq!(rep.failures[0].error.kind(), expected_kind, "{plan}");
        assert_eq!(rep.report.gvn_stats.ladder_rung, RungId::Practical.index(), "{plan}");
        assert_eq!(rep.report.gvn_stats.ladder_failures, 1, "{plan}");
        // Verified output.
        verify(&optimized).unwrap_or_else(|e| panic!("{plan}: committed output invalid: {e}"));
        // Translation validation agrees with the original.
        validate_optimized(&original, &optimized, &format!("{plan}"), &quick_validator())
            .unwrap_or_else(|e| panic!("{plan}: {e}"));
    }
    std::panic::set_hook(hook);
}

#[test]
fn sticky_fault_degrades_to_verified_identity() {
    let plan = FaultPlan::new(FaultKind::Invariant, FaultSite::Eval).seeded(MATRIX_SEED).sticky();
    let original = sample();
    let mut optimized = original.clone();
    let rep = Pipeline::new(GvnConfig::full().fault_plan(Some(plan)))
        .rounds(2)
        .optimize_resilient(&mut optimized);
    assert_eq!(rep.outcome, ResilientOutcome::Identity);
    assert_eq!(rep.failures.len(), 3, "every analysis rung failed: {:?}", rep.failures);
    assert!(rep.failures.iter().all(|f| f.error.kind() == "internal_invariant"));
    assert_eq!(format!("{original}"), format!("{optimized}"), "identity means unchanged");
    verify(&optimized).expect("the identity guarantee: a verified function");
    validate_optimized(&original, &optimized, "sticky-identity", &quick_validator())
        .expect("identity trivially validates");
}

#[test]
fn budget_axes_classify_the_exhaustion() {
    let f = looping();
    // The loop needs at least two optimistic passes; a one-pass ceiling
    // must trip the pass axis.
    let cfg = GvnConfig::full().budget(GvnBudget::unlimited().passes(1));
    match try_run(&f, &cfg) {
        Err(GvnError::BudgetExceeded { budget, limit: 1, .. }) => {
            assert_eq!(budget.name(), "passes");
        }
        other => panic!("expected a pass-budget failure, got {other:?}"),
    }
    // A tiny touched-work quota trips the work axis.
    let cfg = GvnConfig::full().budget(GvnBudget::unlimited().touches(3));
    match try_run(&f, &cfg) {
        Err(GvnError::BudgetExceeded { budget, limit: 3, .. }) => {
            assert_eq!(budget.name(), "work");
        }
        other => panic!("expected a work-budget failure, got {other:?}"),
    }
    // A zero deadline trips the time axis on the first block visit.
    let cfg = GvnConfig::full().budget(GvnBudget::unlimited().deadline(Duration::ZERO));
    match try_run(&f, &cfg) {
        Err(GvnError::BudgetExceeded { budget, .. }) => assert_eq!(budget.name(), "time"),
        other => panic!("expected a time-budget failure, got {other:?}"),
    }
    // The legacy panicking entry point still returns partial results for
    // budget truncation (back-compat), but the outcome is never silent.
    let r = pgvn::core::run(&f, &GvnConfig::full().budget(GvnBudget::unlimited().passes(1)));
    assert!(!r.stats.converged);
    assert_eq!(r.outcome(), RunOutcome::BudgetPasses);
}

#[test]
fn exhausted_budget_on_every_rung_falls_back_to_identity() {
    // The budget applies to every analysis rung equally, so a quota no
    // rung can meet walks the whole ladder down to verified identity.
    let original = looping();
    let mut optimized = original.clone();
    let cfg = GvnConfig::full().budget(GvnBudget::unlimited().touches(1));
    let rep = Pipeline::new(cfg).rounds(2).optimize_resilient(&mut optimized);
    assert_eq!(rep.outcome, ResilientOutcome::Identity);
    assert!(!rep.failures.is_empty());
    assert!(rep.failures.iter().all(|f| f.error.kind() == "budget_exceeded"), "{:?}", rep.failures);
    assert_eq!(format!("{original}"), format!("{optimized}"));
    verify(&optimized).expect("identity output verifies");
}

#[test]
fn malformed_input_is_rejected_not_optimized() {
    use pgvn::ir::Function as IrFunction;
    let mut f = IrFunction::new("bad", 0);
    // A live block with no terminator: the verifier must reject it, and
    // the ladder must refuse to touch it rather than "optimize" garbage.
    f.add_block();
    let before = format!("{f}");
    let rep = Pipeline::new(GvnConfig::full()).optimize_resilient(&mut f);
    match &rep.outcome {
        ResilientOutcome::Rejected(GvnError::VerifierRejected { rung, .. }) => {
            assert_eq!(rung, "input");
        }
        other => panic!("expected input rejection, got {other:?}"),
    }
    assert!(!rep.is_usable());
    assert_eq!(format!("{f}"), before, "a rejected input is left untouched");
}
