//! End-to-end tests of `pgvn perf`: the benchmark artifact, its schema,
//! and the regression comparator's exit codes — including the
//! injected-regression self-check required before trusting the CI gate.

use pgvn::perf::{BenchArtifact, SCHEMA_VERSION};
use pgvn::telemetry::json::{parse, JsonValue};
use std::process::Command;

fn pgvn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pgvn"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pgvn-perf-tests").join(tag);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A tiny suite so the test stays fast; the artifact shape is the same
/// as the full run's.
fn tiny_args() -> [&'static str; 8] {
    ["perf", "--routines", "6", "--repeats", "1", "--jobs-curve", "1,2", "--seed"]
}

fn run_tiny_perf(dir: &std::path::Path, name: &str, seed: &str) -> std::path::PathBuf {
    let out_path = dir.join(name);
    let out = pgvn()
        .args(tiny_args())
        .arg(seed)
        .args(["--out", out_path.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    out_path
}

#[test]
fn perf_writes_a_schema_versioned_artifact() {
    let dir = temp_dir("artifact");
    let path = run_tiny_perf(&dir, "bench.json", "2002");
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let v = parse(text.trim()).expect("artifact is valid JSON");
    assert_eq!(v.get("schema_version").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
    assert_eq!(v.get("suite").and_then(|s| s.get("routines")).and_then(JsonValue::as_u64), Some(6));
    assert!(
        v.get("single_thread")
            .and_then(|s| s.get("routines_per_sec"))
            .and_then(JsonValue::as_f64)
            .expect("throughput present")
            > 0.0
    );
    let Some(JsonValue::Arr(points)) = v.get("batch_scaling") else {
        panic!("batch_scaling must be an array");
    };
    assert_eq!(points.len(), 2);
    assert!(v.get("phases").is_some());
    assert!(v.get("metrics").is_some());
    assert!(v.get("overhead").and_then(|o| o.get("pct")).is_some());
    let Some(JsonValue::Arr(pipes)) = v.get("pipelines") else {
        panic!("pipelines must be an array");
    };
    assert_eq!(pipes.len(), 2, "gvn vs gvn,pre,gvn comparison points");
    // The library parser accepts what the CLI emits.
    let art = BenchArtifact::from_json(text.trim()).expect("library parse");
    assert_eq!(art.routines, 6);
    assert_eq!(art.pipelines[0].spec, "gvn");
    assert_eq!(art.pipelines[1].spec, "gvn,pre,gvn");
    assert!(
        art.pipelines[1].eliminated_total() > art.pipelines[0].eliminated_total(),
        "the PRE pipeline eliminates strictly more on the pinned suite"
    );
}

#[test]
fn perf_compare_is_clean_against_itself_and_flags_injected_regression() {
    let dir = temp_dir("compare");
    let baseline = run_tiny_perf(&dir, "old.json", "2002");

    // Self-compare: exit 0.
    let out =
        pgvn().args(["perf", "--compare"]).arg(&baseline).arg(&baseline).output().expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no regressions"));

    // Inject a synthetic 70% throughput collapse and recompare: the
    // comparator must exit nonzero. This is the self-check that the CI
    // perf gate can actually fail.
    let mut slow =
        BenchArtifact::from_json(std::fs::read_to_string(&baseline).unwrap().trim()).unwrap();
    slow.single_thread_routines_per_sec *= 0.3;
    for p in &mut slow.batch_scaling {
        p.routines_per_sec *= 0.3;
    }
    let slow_path = dir.join("slow.json");
    std::fs::write(&slow_path, slow.to_json()).unwrap();
    let out = pgvn()
        .args(["perf", "--compare"])
        .arg(&baseline)
        .arg(&slow_path)
        .args(["--threshold", "25"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REGRESSION"), "{stderr}");
    assert!(stderr.contains("single-thread"), "{stderr}");

    // The same pair passes under a threshold looser than the injected
    // drop — the noise dial works.
    let out = pgvn()
        .args(["perf", "--compare"])
        .arg(&baseline)
        .arg(&slow_path)
        .args(["--threshold", "95", "--max-overhead", "1000"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn perf_compare_rejects_schema_mismatch_and_bad_files() {
    let dir = temp_dir("schema");
    let baseline = run_tiny_perf(&dir, "old.json", "7");
    let mut future =
        BenchArtifact::from_json(std::fs::read_to_string(&baseline).unwrap().trim()).unwrap();
    future.schema_version = SCHEMA_VERSION + 1;
    let future_path = dir.join("future.json");
    std::fs::write(&future_path, future.to_json()).unwrap();
    let out = pgvn()
        .args(["perf", "--compare"])
        .arg(&baseline)
        .arg(&future_path)
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema version mismatch"));

    let out = pgvn()
        .args(["perf", "--compare", "/nonexistent/a.json"])
        .arg(&baseline)
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2), "unreadable baseline is a usage/io error");
}

#[test]
fn perf_bad_flags_exit_with_usage() {
    let out = pgvn().args(["perf", "--nonsense"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: pgvn perf"));
}

#[test]
fn committed_baseline_parses_at_the_current_schema() {
    // BENCH_9.json at the repo root is the CI baseline; a schema change
    // without regenerating it should fail here, not in CI.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_9.json");
    let text = std::fs::read_to_string(path).expect("BENCH_9.json committed at repo root");
    let art = BenchArtifact::from_json(text.trim()).expect("baseline parses");
    assert_eq!(art.schema_version, SCHEMA_VERSION, "regenerate BENCH_9.json");
    assert!(art.single_thread_routines_per_sec > 0.0);
    assert!(!art.batch_scaling.is_empty());
    assert_eq!(art.pipelines.len(), 2, "baseline carries the pipeline comparison");
    assert!(
        art.pipelines[1].eliminated_total() > art.pipelines[0].eliminated_total(),
        "committed baseline shows PRE beating plain gvn"
    );
}
