//! End-to-end tests of the `pgvn serve` subsystem: protocol
//! robustness, fault isolation, serve≡batch determinism, and the
//! ≥1000-request soak with stable context-pool capacities.

use pgvn::batch::{run_batch, BatchInput, BatchOptions};
use pgvn::core::FaultKind;
use pgvn::serve::load::{mix_plan, run_load, FaultMix, LoadOptions};
use pgvn::serve::proto::{
    extract_record, parse_request, read_frame, write_frame, FrameEvent, RequestOp,
};
use pgvn::serve::{resolve_request_options, serve_duplex, ServeOptions, ServeSummary};
use pgvn::telemetry::json::{parse, JsonValue};
use std::io::Write;
use std::os::unix::net::UnixStream;

/// Starts a duplex server on a socketpair and runs `client` against
/// the client end. The closure owns the conversation; the server's
/// summary is returned once the client end closes and the drain
/// completes.
fn with_server<T: Send>(
    opts: &ServeOptions,
    client: impl FnOnce(UnixStream) -> T + Send,
) -> (T, ServeSummary) {
    let (client_sock, server_sock) = UnixStream::pair().expect("socketpair");
    let server_reader = server_sock.try_clone().expect("server clone");
    let mut result = None;
    let mut summary = None;
    std::thread::scope(|s| {
        let server = s.spawn(|| serve_duplex(server_reader, server_sock, opts));
        result = Some(client(client_sock));
        summary = Some(server.join().expect("server thread"));
    });
    (result.unwrap(), summary.unwrap())
}

/// Sends every payload as one frame (concurrent reader draining
/// responses, so large volumes can't deadlock on socket buffers),
/// closes the write half, and returns all responses plus the summary.
fn roundtrip(opts: &ServeOptions, frames: Vec<Vec<u8>>) -> (Vec<String>, ServeSummary) {
    with_server(opts, move |sock| {
        let mut reader = sock.try_clone().expect("client clone");
        std::thread::scope(|s| {
            let read_all = s.spawn(move || {
                let mut out = Vec::new();
                let mut never = || false;
                while let Ok(FrameEvent::Frame(p)) = read_frame(&mut reader, 1 << 24, &mut never) {
                    out.push(String::from_utf8(p).expect("responses are UTF-8"));
                }
                out
            });
            let mut w = sock;
            for f in &frames {
                write_frame(&mut w, f).expect("client write");
            }
            w.shutdown(std::net::Shutdown::Write).expect("half-close");
            read_all.join().expect("reader thread")
        })
    })
}

/// Same, but the bytes go on the wire verbatim (malformed-framing
/// tests build their own prefixes).
fn roundtrip_raw(opts: &ServeOptions, raw: Vec<u8>) -> (Vec<String>, ServeSummary) {
    with_server(opts, move |sock| {
        let mut reader = sock.try_clone().expect("client clone");
        std::thread::scope(|s| {
            let read_all = s.spawn(move || {
                let mut out = Vec::new();
                let mut never = || false;
                while let Ok(FrameEvent::Frame(p)) = read_frame(&mut reader, 1 << 24, &mut never) {
                    out.push(String::from_utf8(p).expect("responses are UTF-8"));
                }
                out
            });
            let mut w = sock;
            w.write_all(&raw).expect("client write");
            w.shutdown(std::net::Shutdown::Write).expect("half-close");
            read_all.join().expect("reader thread")
        })
    })
}

fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

/// The reply discriminator of a response.
fn reply_of(response: &str) -> String {
    parse(response)
        .expect("response is valid JSON")
        .get("reply")
        .and_then(JsonValue::as_str)
        .expect("response has a reply")
        .to_string()
}

fn gen_request(id: u64, seed: u64) -> Vec<u8> {
    format!(r#"{{"id":{id},"name":"serve_{id}","gen_seed":{seed}}}"#).into_bytes()
}

#[test]
fn ping_gen_and_source_requests_are_answered() {
    let opts = ServeOptions::default();
    let (responses, summary) = roundtrip(
        &opts,
        vec![
            br#"{"id":1,"op":"ping"}"#.to_vec(),
            gen_request(2, 7),
            br#"{"id":3,"routine":"routine f(a, b) { x = a + b; y = b + a; return x - y; }"}"#
                .to_vec(),
            br#"{"id":4,"op":"stats"}"#.to_vec(),
        ],
    );
    assert_eq!(responses.len(), 4, "{responses:?}");
    let mut replies: Vec<String> = responses.iter().map(|r| reply_of(r)).collect();
    replies.sort();
    assert_eq!(replies, ["pong", "record", "record", "stats"]);
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.records, 2);
    assert_eq!(summary.control, 2);
    assert_eq!(summary.responses, 4);
    assert!(summary.is_clean());
}

#[test]
fn truncated_frame_gets_an_error_then_a_clean_close() {
    // Declare 100 bytes, deliver 10, hang up.
    let mut raw = 100u32.to_le_bytes().to_vec();
    raw.extend_from_slice(&[b'x'; 10]);
    let (responses, summary) = roundtrip_raw(&ServeOptions::default(), raw);
    assert_eq!(responses.len(), 1, "{responses:?}");
    assert_eq!(reply_of(&responses[0]), "error");
    assert!(responses[0].contains("\"error\":\"protocol\""), "{}", responses[0]);
    assert!(responses[0].contains("truncated"), "{}", responses[0]);
    assert_eq!(summary.protocol_errors, 1);
    assert!(summary.is_clean());
}

#[test]
fn oversized_frame_is_rejected_and_the_connection_survives() {
    let mut opts = ServeOptions::default();
    opts.limits.max_frame_bytes = 64;
    let mut raw = framed(&[b'{'; 200]);
    raw.extend_from_slice(&framed(&gen_request(9, 3)));
    let (responses, summary) = roundtrip_raw(&opts, raw);
    assert_eq!(responses.len(), 2, "{responses:?}");
    let over = responses.iter().find(|r| r.contains("over_limit")).expect("over_limit response");
    assert_eq!(reply_of(over), "error");
    let record = responses.iter().find(|r| reply_of(r) == "record").expect("record response");
    assert!(record.contains("\"id\":9"));
    assert_eq!(summary.protocol_errors, 1);
    assert_eq!(summary.records, 1);
    assert!(summary.is_clean());
}

#[test]
fn malformed_payloads_get_protocol_errors_without_killing_the_loop() {
    let (responses, summary) = roundtrip(
        &ServeOptions::default(),
        vec![
            vec![0xff, 0xfe, 0x80],                   // invalid UTF-8
            b"{\"id\":5,".to_vec(),                   // invalid JSON
            b"[1,2,3]".to_vec(),                      // not an object
            br#"{"id":6,"op":"evaporate"}"#.to_vec(), // unknown op
            br#"{"id":7}"#.to_vec(),                  // no routine/gen_seed
            gen_request(8, 11),                       // still served after all that
        ],
    );
    assert_eq!(responses.len(), 6, "{responses:?}");
    assert_eq!(responses.iter().filter(|r| reply_of(r) == "error").count(), 5);
    assert_eq!(responses.iter().filter(|r| reply_of(r) == "record").count(), 1);
    assert_eq!(summary.protocol_errors, 5);
    assert_eq!(summary.records, 1);
    assert!(summary.is_clean());
}

#[test]
fn garbage_routine_text_is_a_classified_input_error() {
    let (responses, summary) = roundtrip(
        &ServeOptions::default(),
        vec![br#"{"id":1,"routine":"this is not a routine at all {{{"}"#.to_vec()],
    );
    assert_eq!(responses.len(), 1);
    assert_eq!(reply_of(&responses[0]), "record");
    assert!(responses[0].contains("\"status\":\"input_error\""), "{}", responses[0]);
    assert_eq!(summary.input_errors, 1);
    assert_eq!(summary.records, 1);
    assert!(summary.is_clean());
}

#[test]
fn mid_request_disconnect_is_survived_and_counted() {
    let ((), summary) = with_server(&ServeOptions::default(), |sock| {
        let mut w = sock;
        write_frame(&mut w, &gen_request(1, 5)).expect("client write");
        // Drop the whole socket without reading the response.
        drop(w);
    });
    assert_eq!(summary.requests, 1);
    assert_eq!(summary.records, 1, "the request was still processed");
    assert_eq!(summary.hangups, 1, "the undeliverable response is counted");
    assert!(summary.is_clean());
}

#[test]
fn zero_capacity_queue_sheds_everything() {
    let opts = ServeOptions { queue_capacity: 0, ..Default::default() };
    let (responses, summary) =
        roundtrip(&opts, vec![gen_request(1, 1), gen_request(2, 2), gen_request(3, 3)]);
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(|r| reply_of(r) == "shed"), "{responses:?}");
    assert_eq!(summary.shed, 3);
    assert_eq!(summary.records, 0);
    assert!(summary.is_clean());
}

#[test]
fn serve_output_is_byte_identical_to_sequential_batch() {
    let n = 20u64;
    let opts = ServeOptions { workers: 4, ..Default::default() };
    let frames: Vec<Vec<u8>> = (0..n)
        .map(|i| gen_request(i + 1, pgvn::oracle::mix64(2002 ^ pgvn::oracle::mix64(i))))
        .collect();
    let (responses, summary) = roundtrip(&opts, frames.clone());
    assert_eq!(summary.records, n);
    assert!(summary.is_clean());

    // Collect the served records in request order.
    let mut served: Vec<(u64, String)> = responses
        .iter()
        .map(|r| {
            let v = parse(r).expect("valid JSON");
            assert_eq!(v.get("reply").and_then(JsonValue::as_str), Some("record"), "{r}");
            let id = v.get("id").and_then(JsonValue::as_u64).expect("id");
            (id, extract_record(r).expect("record slice").to_string())
        })
        .collect();
    served.sort_unstable_by_key(|(id, _)| *id);

    // Replay the identical corpus through the sequential batch engine
    // with the server's own resolved options.
    let requests: Vec<_> =
        frames.iter().map(|f| parse_request(f).expect("test request parses")).collect();
    let batch_opts = resolve_request_options(&requests[0], &opts).expect("options resolve");
    let inputs: Vec<BatchInput> = requests
        .iter()
        .map(|req| {
            let gcfg =
                pgvn::workload::GenConfig { seed: req.gen_seed.unwrap(), ..Default::default() };
            let routine = pgvn::workload::generate_routine(&req.name, &gcfg);
            BatchInput { name: req.name.clone(), source: Ok(pgvn::lang::print_routine(&routine)) }
        })
        .collect();
    let report = run_batch(&inputs, &BatchOptions { jobs: 1, ..batch_opts });
    assert_eq!(served.len(), report.records.len());
    for ((id, served_json), batch_rec) in served.iter().zip(report.records.iter()) {
        assert_eq!(
            served_json, &batch_rec.json,
            "record {id} differs between serve (workers 4) and batch --jobs 1"
        );
    }
}

#[test]
fn every_fault_class_is_absorbed_sticky_and_transient() {
    let sites = ["eval", "eval", "edges", "rewrite"];
    let mut frames = Vec::new();
    let mut id = 0;
    for (kind, site) in FaultKind::ALL.iter().zip(sites) {
        for sticky in [false, true] {
            id += 1;
            frames.push(
                format!(
                    r#"{{"id":{id},"name":"fault_{id}","gen_seed":{id},"inject":"{}@{site}","inject_seed":2002,"inject_sticky":{sticky}}}"#,
                    kind.name(),
                )
                .into_bytes(),
            );
        }
    }
    let (responses, summary) = roundtrip(&ServeOptions::default(), frames);
    assert_eq!(responses.len(), 8);
    assert!(responses.iter().all(|r| reply_of(r) == "record"), "{responses:?}");
    assert_eq!(summary.records, 8);
    assert_eq!(summary.escaped_panics, 0, "every injected fault is absorbed");
    assert!(summary.degraded > 0, "injected faults degrade at least one record");
    assert!(summary.absorbed_panics > 0, "panic faults are absorbed by the ladder");
}

/// The capacity fields of every worker in a `stats` response.
fn worker_capacities(stats: &str) -> Vec<Vec<u64>> {
    let v = parse(stats).expect("stats is valid JSON");
    let Some(JsonValue::Arr(workers)) = v.get("workers") else { panic!("stats has workers") };
    workers
        .iter()
        .map(|w| {
            ["interner_exprs", "interner_table", "class_slots", "class_table", "value_slots"]
                .iter()
                .map(|k| w.get(k).and_then(JsonValue::as_u64).expect("capacity field"))
                .collect()
        })
        .collect()
}

#[test]
fn soak_1000_mixed_requests_with_stable_pool_capacities() {
    let opts = ServeOptions { workers: 2, ..Default::default() };
    let distinct = 250u64;
    let repeats = 4u64;
    let ((answered, warm_caps, final_caps), summary) = with_server(&opts, |sock| {
        fn ask(w: &mut UnixStream, r: &mut UnixStream, payload: &[u8]) -> String {
            write_frame(w, payload).expect("soak write");
            let mut never = || false;
            match read_frame(r, 1 << 24, &mut never) {
                Ok(FrameEvent::Frame(p)) => String::from_utf8(p).expect("UTF-8"),
                other => panic!("soak request unanswered: {other:?}"),
            }
        }
        let mut w = sock.try_clone().expect("clone");
        let mut r = sock;
        let mut answered = 0u64;
        let round = |w: &mut UnixStream, r: &mut UnixStream, idx: u64, answered: &mut u64| {
            // Mixed traffic: mostly clean/fault-injected optimizes, a
            // sprinkle of malformed payloads and garbage routines.
            let payload = if idx % 97 == 13 {
                b"{broken json".to_vec()
            } else if idx % 101 == 17 {
                format!(r#"{{"id":{idx},"routine":"routine {{ nope"}}"#).into_bytes()
            } else {
                let seed = pgvn::oracle::mix64(idx % distinct);
                match mix_plan(FaultMix::Matrix, idx, 2002) {
                    None => gen_request(idx + 1, seed),
                    Some(plan) => format!(
                        r#"{{"id":{},"name":"serve_{}","gen_seed":{seed},"inject":"{}@{}","inject_seed":{},"inject_sticky":{}}}"#,
                        idx + 1,
                        idx + 1,
                        plan.kind,
                        plan.site,
                        plan.seed,
                        plan.sticky
                    )
                    .into_bytes(),
                }
            };
            let resp = ask(w, r, &payload);
            assert!(!reply_of(&resp).is_empty());
            *answered += 1;
        };
        // Warm-up wave: every distinct routine once.
        for idx in 0..distinct {
            round(&mut w, &mut r, idx, &mut answered);
        }
        let warm = worker_capacities(&ask(&mut w, &mut r, br#"{"id":9001,"op":"stats"}"#));
        // Three more waves over the same routines.
        for idx in distinct..distinct * repeats {
            round(&mut w, &mut r, idx, &mut answered);
        }
        let fin = worker_capacities(&ask(&mut w, &mut r, br#"{"id":9002,"op":"stats"}"#));
        w.shutdown(std::net::Shutdown::Write).expect("half-close");
        (answered, warm, fin)
    });
    assert_eq!(answered, distinct * repeats, "every request answered");
    assert!(summary.records + summary.protocol_errors >= distinct * repeats);
    assert_eq!(summary.escaped_panics, 0, "no fault class escaped in {answered} requests");
    assert_eq!(
        warm_caps, final_caps,
        "context pool capacities stable after the warm-up wave (allocation amortization)"
    );
    assert!(summary.absorbed_panics > 0 && summary.degraded > 0, "faults were really mixed in");
    assert!(summary.input_errors > 0, "garbage routines were really mixed in");
}

#[test]
fn load_harness_reports_latency_and_zero_drops() {
    let opts = LoadOptions {
        clients: 3,
        routines: 6,
        seed: 42,
        fault: FaultMix::Every(5),
        check_batch: true,
        ..Default::default()
    };
    let report = run_load(&opts).expect("load campaign runs");
    assert_eq!(report.sent, 18);
    assert_eq!(report.received, 18);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.mismatches, 0, "serve records match batch --jobs 1");
    assert!(report.records > 0);
    assert!(report.p99_nanos >= report.p50_nanos);
    assert!(report.routines_per_sec > 0.0);
    assert!(report.is_clean());
    let json = report.to_json();
    parse(&json).expect("load report is valid JSON");
    assert!(json.contains("\"dropped\":0"), "{json}");
}

#[test]
fn request_op_names_round_trip_through_parse() {
    for (op, name) in
        [(RequestOp::Ping, "ping"), (RequestOp::Stats, "stats"), (RequestOp::Shutdown, "shutdown")]
    {
        let req = parse_request(format!(r#"{{"id":1,"op":"{name}"}}"#).as_bytes()).expect("parses");
        assert_eq!(req.op, op);
    }
}
