//! Malformed-fixture matrix for the analysis-phase lint codes.
//!
//! `crates/ir/tests/verify_malformed.rs` (plus the crate-internal
//! fixtures in `pgvn_ir::verify`) covers every structural code; this
//! file covers the error-severity codes the lint suite itself owns —
//! `ssa_use_not_dominated`, `phi_cycle_no_init`,
//! `switch_duplicate_case` — plus `parse_error` from the corpus
//! front door. Each fixture asserts the exact stable code, the
//! diagnostic's location, and the JSON rendering `pgvn check --json`
//! emits.

use pgvn::batch::BatchInput;
use pgvn::check::{run_check_inputs, PARSE_ERROR};
use pgvn::ir::{verify, CmpOp, Function, InstKind, Severity};
use pgvn::transform::check::codes;
use pgvn::transform::{check_function, CheckOptions};

/// Runs the full suite and returns the sole diagnostic carrying `code`,
/// after asserting its severity and JSON shape.
fn expect_error(f: &Function, code: &str) -> pgvn::ir::Diagnostic {
    verify(f).expect("fixtures are structurally well-formed");
    let engine = check_function(f, &CheckOptions::default());
    let matching: Vec<_> =
        engine.diagnostics().iter().filter(|d| d.code() == code).cloned().collect();
    assert_eq!(matching.len(), 1, "expected exactly one {code}: {:?}", engine.diagnostics());
    let d = matching[0].clone();
    assert_eq!(d.severity(), Severity::Error);
    let json = d.to_json();
    assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    d
}

#[test]
fn use_on_the_wrong_branch_arm_is_ssa_use_not_dominated() {
    // A value defined on one arm used on the other: structurally fine,
    // dominance-broken.
    let mut f = Function::new("bad", 1);
    let entry = f.entry();
    let (t, e) = (f.add_block(), f.add_block());
    let zero = f.iconst(entry, 0);
    let c = f.cmp(entry, CmpOp::Gt, f.param(0), zero);
    f.set_branch(entry, c, t, e);
    let x = f.iconst(t, 1);
    f.set_return(t, x);
    f.set_return(e, x);
    let d = expect_error(&f, codes::SSA_USE_NOT_DOMINATED);
    assert_eq!(d.block(), Some(e));
    assert_eq!(d.inst(), f.terminator(e));
}

#[test]
fn phi_feeding_only_itself_is_phi_cycle_no_init() {
    // An unreachable self-loop whose φ takes only its own value: no
    // execution could ever give it a concrete source.
    let mut f = Function::new("cycle", 0);
    let entry = f.entry();
    let zero = f.iconst(entry, 0);
    f.set_return(entry, zero);
    let u = f.add_block();
    let phi = f.append_phi(u);
    f.set_jump(u, u);
    f.set_phi_args(phi, vec![phi]);
    let d = expect_error(&f, codes::PHI_CYCLE_NO_INIT);
    assert_eq!(d.block(), Some(u));
    assert_eq!(d.inst(), Some(f.def(phi)));
    // The unreachable block itself is flagged too, at warn severity.
    let engine = check_function(&f, &CheckOptions::default());
    let warn = engine
        .diagnostics()
        .iter()
        .find(|d| d.code() == codes::UNREACHABLE_BLOCK)
        .expect("unreachable block flagged");
    assert_eq!(warn.severity(), Severity::Warn);
}

#[test]
fn repeated_switch_case_is_switch_duplicate_case() {
    // `set_switch` refuses duplicate cases, so model the corruption a
    // buggy case-folding rewrite could introduce: rewrite a well-formed
    // switch's kind in place. Edge counts stay consistent (2 cases +
    // default before and after), so the verifier stays happy.
    let mut f = Function::new("sw", 1);
    let entry = f.entry();
    let (a, b, d) = (f.add_block(), f.add_block(), f.add_block());
    let x = f.param(0);
    f.set_switch(entry, x, &[1, 2], &[a, b], d);
    for blk in [a, b, d] {
        f.set_return(blk, x);
    }
    let term = f.terminator(entry).expect("entry ends in the switch");
    f.replace_kind(term, InstKind::Switch(x, vec![1, 1]));
    let diag = expect_error(&f, codes::SWITCH_DUPLICATE_CASE);
    assert_eq!(diag.block(), Some(entry));
    assert_eq!(diag.inst(), Some(term));
}

#[test]
fn unparseable_source_is_parse_error_in_the_json_record() {
    let inputs = [BatchInput { name: "broken".into(), source: Ok("routine oops {".into()) }];
    let report = run_check_inputs(&inputs, &CheckOptions::without_gvn());
    assert!(report.has_errors());
    assert_eq!(report.records[0].diagnostics.len(), 1);
    assert_eq!(report.records[0].diagnostics[0].code(), PARSE_ERROR);
    let line = report.records[0].json_line();
    assert!(line.contains("\"code\":\"parse_error\""), "{line}");
    assert!(line.contains("\"errors\":1"), "{line}");
    pgvn::telemetry::json::parse(&line).expect("record is valid JSON");
}
