//! Differential property tests of the CFG analyses on generated programs:
//! the fast dominator algorithm against the naive set-based one, RPO
//! invariants, and postdominator sanity.

use pgvn::analysis::{naive_dominators, DomTree, PostDomTree, Rpo};
use pgvn::ir::{Function, InstKind};
use pgvn::workload::{generate_function, GenConfig};
use proptest::prelude::*;

fn gen(seed: u64) -> Function {
    let cfg = GenConfig { seed, target_stmts: 30, ..Default::default() };
    generate_function("a", &cfg, pgvn::ssa::SsaStyle::Minimal)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn chk_matches_naive_dominators(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let naive = naive_dominators(&f, &rpo);
        for (i, &b) in rpo.order().iter().enumerate() {
            for &a in rpo.order() {
                prop_assert_eq!(
                    dt.dominates(a, b),
                    naive[i].contains(&a),
                    "dominates({}, {}) disagrees (seed {})", a, b, seed
                );
            }
        }
    }

    #[test]
    fn rpo_orders_forward_edges(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        // Entry is first; every non-back edge goes forward in RPO.
        prop_assert_eq!(rpo.order()[0], f.entry());
        for e in f.edges() {
            let (from, to) = (f.edge_from(e), f.edge_to(e));
            if rpo.is_reachable(from) && rpo.is_reachable(to) && !rpo.is_back_edge(e) {
                prop_assert!(rpo.number(from) < rpo.number(to), "{} not forward (seed {seed})", e);
            }
        }
    }

    #[test]
    fn idom_strictly_dominates_and_is_reachable(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        for &b in rpo.order() {
            let idom = dt.idom(b).expect("reachable blocks have idoms");
            if b == f.entry() {
                prop_assert_eq!(idom, b);
            } else {
                prop_assert!(dt.strictly_dominates(idom, b));
                // The idom dominates every predecessor-path: every other
                // strict dominator of b dominates the idom.
                for &a in rpo.order() {
                    if dt.strictly_dominates(a, b) {
                        prop_assert!(dt.dominates(a, idom), "{} sdom {} but not dom idom {}", a, b, idom);
                    }
                }
            }
        }
    }

    #[test]
    fn postdominators_contain_all_paths_to_exit(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        let pdt = PostDomTree::compute(&f, &rpo);
        // Every return block postdominates itself; a block whose every
        // successor postdominated by P is itself postdominated by P.
        for &b in rpo.order() {
            let is_ret = f
                .terminator(b)
                .is_some_and(|t| matches!(f.kind(t), InstKind::Return(_)));
            if is_ret {
                prop_assert!(pdt.postdominates(b, b));
            }
        }
        // Sanity: postdominance is transitive on a sampled chain.
        for &b in rpo.order() {
            if let Some(p) = pdt.ipdom(b) {
                prop_assert!(pdt.postdominates(p, b));
                if let Some(pp) = pdt.ipdom(p) {
                    prop_assert!(pdt.postdominates(pp, b), "transitivity via {p}");
                }
            }
        }
    }

    #[test]
    fn ranks_strictly_increase_along_block_order(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        let ranks = pgvn::analysis::Ranks::assign(&f, &rpo);
        let mut last = 0;
        for &b in rpo.order() {
            for &inst in f.block_insts(b) {
                if let Some(v) = f.inst_result(inst) {
                    let r = ranks.rank(v);
                    prop_assert!(r > last, "rank {r} not increasing (seed {seed})");
                    last = r;
                }
            }
        }
    }

    #[test]
    fn loop_info_depth_is_consistent(seed in 0u64..3_000) {
        let f = gen(seed);
        let rpo = Rpo::compute(&f);
        let dt = DomTree::compute(&f, &rpo);
        let li = pgvn::analysis::LoopInfo::compute(&f, &rpo, &dt);
        // Headers have depth >= 1; entry has depth 0; connectedness is the max.
        prop_assert_eq!(li.depth(f.entry()), 0);
        let mut max = 0;
        for &b in rpo.order() {
            max = max.max(li.depth(b));
        }
        prop_assert_eq!(max, li.connectedness());
        for &h in li.headers() {
            prop_assert!(li.depth(h) >= 1, "header {h} has depth 0");
        }
        // Back edge count bounds the number of headers.
        prop_assert!(li.headers().len() <= rpo.back_edges().len());
    }

    #[test]
    fn generated_sources_roundtrip_through_the_printer(seed in 0u64..3_000) {
        use pgvn::lang::{parse, print_routine};
        let cfg = GenConfig { seed, target_stmts: 25, ..Default::default() };
        let routine = pgvn::workload::generate_routine("rt", &cfg);
        let printed = print_routine(&routine);
        let reparsed = parse(&printed).map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        // Printing is a fixpoint after one round (negative literals are
        // rewritten once), and semantics are preserved.
        prop_assert_eq!(print_routine(&reparsed), printed);
        let f1 = pgvn::ssa::build_ssa(&pgvn::lang::lower(&routine), pgvn::ssa::SsaStyle::Minimal).unwrap();
        let f2 = pgvn::ssa::build_ssa(&pgvn::lang::lower(&reparsed), pgvn::ssa::SsaStyle::Minimal).unwrap();
        for args in [[0i64, 0, 0], [3, -5, 9]] {
            let mut o1 = pgvn::ir::HashedOpaques::new(seed);
            let mut o2 = pgvn::ir::HashedOpaques::new(seed);
            let a = pgvn::ir::Interpreter::new(&f1).fuel(5_000_000).run(&args, &mut o1).unwrap();
            let b = pgvn::ir::Interpreter::new(&f2).fuel(5_000_000).run(&args, &mut o2).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn def_use_is_exact(seed in 0u64..3_000) {
        let f = gen(seed);
        let du = pgvn::ir::DefUse::compute(&f);
        // Every recorded use really uses the value, with multiplicity.
        for v in f.values() {
            for &u in du.uses(v) {
                let mut count = 0;
                f.kind(u).visit_args(|a| {
                    if a == v {
                        count += 1;
                    }
                });
                prop_assert!(count > 0, "{u} recorded as user of {v} but does not use it");
            }
        }
        // And every actual use is recorded.
        for b in f.blocks() {
            for &inst in f.block_insts(b) {
                f.kind(inst).visit_args(|a| {
                    assert!(du.uses(a).contains(&inst), "{inst} missing from uses of {a}");
                });
            }
        }
    }
}
