//! Property-based soundness tests: the analysis' claims are checked
//! against the reference interpreter on randomly generated routines.
//!
//! Congruence is "a compile-time approximation to run-time equivalence"
//! (§1.1); these tests enforce exactly that contract:
//!
//! 1. a value proven constant evaluates to that constant on every run;
//! 2. a block/edge proven unreachable never executes;
//! 3. two congruent values defined in the same block agree within each
//!    dynamic execution of that block;
//! 4. the transform pipeline preserves the routine's result.

use pgvn_core::{run, GvnConfig, Mode, Variant};
use pgvn_ir::{EntityRef, Function, HashedOpaques, Interpreter};
use pgvn_transform::Pipeline;
use pgvn_workload::{generate_function, GenConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn gen(seed: u64, stmts: usize) -> Function {
    let cfg = GenConfig { seed, target_stmts: stmts, ..Default::default() };
    generate_function(&format!("prop{seed}"), &cfg, pgvn_ssa::SsaStyle::Minimal)
}

fn check_soundness(f: &Function, cfg: &GvnConfig, args: &[i64], opaque_seed: u64) {
    let results = run(f, cfg);
    assert!(results.stats.converged, "{}: did not converge", f.name());
    let interp = Interpreter::new(f).fuel(5_000_000).record_instances(true);
    let (_, trace) = interp
        .run_traced(args, &mut HashedOpaques::new(opaque_seed))
        .expect("generated routines terminate");

    // (2) Unreachable blocks and edges never execute.
    for b in f.blocks() {
        if !results.is_block_reachable(b) {
            assert_eq!(
                trace.block_visits[b.index()],
                0,
                "{}: unreachable {b} executed (args {args:?})",
                f.name()
            );
        }
    }
    for e in f.edges() {
        if !results.is_edge_reachable(e) {
            assert_eq!(
                trace.edge_visits[e.index()],
                0,
                "{}: unreachable {e} traversed (args {args:?})",
                f.name()
            );
        }
    }

    // (1) Constants match execution; values proven unreachable never get
    // a value. (3) Same-block congruent values agree per instance.
    for (block, instance) in &trace.block_instances {
        let mut class_values: HashMap<_, (pgvn_ir::Value, i64)> = HashMap::new();
        for &(v, val) in instance {
            assert!(
                !results.is_value_unreachable(v),
                "{}: {v} in {block} executed but was proven unreachable (args {args:?})",
                f.name()
            );
            if let Some(c) = results.constant_value(v) {
                assert_eq!(
                    val,
                    c,
                    "{}: {v} proven constant {c} but evaluated to {val} (args {args:?})",
                    f.name()
                );
            }
            let class = results.class_of(v);
            if let Some(&(w, prev)) = class_values.get(&class) {
                assert_eq!(
                    val, prev,
                    "{}: congruent {v}={val} and {w}={prev} disagree in one execution of {block} (args {args:?})",
                    f.name()
                );
            } else {
                class_values.insert(class, (v, val));
            }
        }
    }
}

fn check_pipeline_equivalence(f: &Function, cfg: GvnConfig, args: &[i64], opaque_seed: u64) {
    let mut optimized = f.clone();
    Pipeline::new(cfg.clone()).rounds(2).optimize(&mut optimized);
    pgvn_ir::verify(&optimized).unwrap_or_else(|e| panic!("{}: {e} ({cfg:?})", f.name()));
    let r1 = Interpreter::new(f)
        .fuel(5_000_000)
        .run(args, &mut HashedOpaques::new(opaque_seed))
        .unwrap();
    let r2 = Interpreter::new(&optimized)
        .fuel(5_000_000)
        .run(args, &mut HashedOpaques::new(opaque_seed))
        .unwrap();
    assert_eq!(r1, r2, "{}: pipeline changed semantics (args {args:?}, {cfg:?})", f.name());
}

fn cases() -> u32 {
    std::env::var("PGVN_PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn full_config_is_sound(seed in 0u64..5_000, a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        let f = gen(seed, 35);
        check_soundness(&f, &GvnConfig::full(), &[a, b, c], seed ^ 0xABCD);
    }

    #[test]
    fn all_modes_are_sound(seed in 0u64..2_000, a in -20i64..20, b in -20i64..20) {
        let f = gen(seed, 25);
        for mode in [Mode::Optimistic, Mode::Balanced, Mode::Pessimistic] {
            check_soundness(&f, &GvnConfig::full().mode(mode), &[a, b, 3], seed);
        }
    }

    #[test]
    fn emulations_are_sound(seed in 0u64..2_000, a in -20i64..20) {
        let f = gen(seed, 25);
        for cfg in [GvnConfig::click(), GvnConfig::sccp(), GvnConfig::awz()] {
            check_soundness(&f, &cfg, &[a, a + 1, -a], seed);
        }
    }

    #[test]
    fn complete_variant_is_sound(seed in 0u64..2_000, a in -20i64..20, b in -20i64..20) {
        let f = gen(seed, 25);
        check_soundness(&f, &GvnConfig::full().variant(Variant::Complete), &[a, b, 0], seed);
    }

    #[test]
    fn complete_is_at_least_as_strong_as_practical(seed in 0u64..1_500) {
        let f = gen(seed, 25);
        let p = run(&f, &GvnConfig::full()).strength();
        let c = run(&f, &GvnConfig::full().variant(Variant::Complete)).strength();
        prop_assert!(c.unreachable_values >= p.unreachable_values);
    }

    #[test]
    fn phi_distribution_extension_is_sound(seed in 0u64..2_000, a in -20i64..20, b in -20i64..20) {
        let f = gen(seed, 25);
        check_soundness(&f, &GvnConfig::extended(), &[a, b, 1], seed);
        check_pipeline_equivalence(&f, GvnConfig::extended(), &[a, b, 1], seed);
    }

    #[test]
    fn pipeline_preserves_semantics(seed in 0u64..5_000, a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        let f = gen(seed, 30);
        check_pipeline_equivalence(&f, GvnConfig::full(), &[a, b, c], seed);
    }

    #[test]
    fn pipeline_preserves_semantics_weak_configs(seed in 0u64..1_500, a in -20i64..20) {
        let f = gen(seed, 20);
        for cfg in [GvnConfig::click(), GvnConfig::sccp(), GvnConfig::full().mode(Mode::Balanced)] {
            check_pipeline_equivalence(&f, cfg, &[a, 2 * a, 5], seed);
        }
    }

    #[test]
    fn sparse_equals_dense(seed in 0u64..1_500) {
        let f = gen(seed, 25);
        let sparse = run(&f, &GvnConfig::full());
        let dense = run(&f, &GvnConfig::full().sparse(false));
        prop_assert_eq!(sparse.strength(), dense.strength());
        for v in f.values() {
            prop_assert_eq!(sparse.constant_value(v), dense.constant_value(v));
            prop_assert_eq!(sparse.is_value_unreachable(v), dense.is_value_unreachable(v));
        }
    }

    #[test]
    fn mode_strength_is_ordered(seed in 0u64..1_500) {
        let f = gen(seed, 25);
        // Unreachability is monotone in optimism with or without the
        // inference heuristics.
        let opt = run(&f, &GvnConfig::full()).strength();
        let bal = run(&f, &GvnConfig::full().mode(Mode::Balanced)).strength();
        let pes = run(&f, &GvnConfig::full().mode(Mode::Pessimistic)).strength();
        prop_assert!(opt.unreachable_values >= bal.unreachable_values);
        prop_assert!(bal.unreachable_values >= pes.unreachable_values);
        // Constant counts are only guaranteed monotone without value
        // inference: §2.7 notes inference "usually finds more congruences
        // in practice, but this cannot be guaranteed" — its replacement
        // choices depend on the (mode-dependent) classes.
        let mut base = GvnConfig::full();
        base.value_inference = false;
        let opt = run(&f, &base.clone()).strength();
        let bal = run(&f, &base.clone().mode(Mode::Balanced)).strength();
        let pes = run(&f, &base.mode(Mode::Pessimistic)).strength();
        prop_assert!(opt.constant_values >= bal.constant_values);
        prop_assert!(bal.constant_values >= pes.constant_values);
    }

    #[test]
    fn full_is_at_least_as_strong_as_emulations(seed in 0u64..1_500) {
        let f = gen(seed, 25);
        let full = run(&f, &GvnConfig::full()).strength();
        let click = run(&f, &GvnConfig::click()).strength();
        let sccp = run(&f, &GvnConfig::sccp()).strength();
        prop_assert!(full.unreachable_values >= click.unreachable_values);
        prop_assert!(full.unreachable_values >= sccp.unreachable_values);
        // Note: constant_values comparisons with click can regress on rare
        // value-inference cases (the paper observes 6 such routines), so
        // only the sccp bound is asserted for constants.
        prop_assert!(full.constant_values >= sccp.constant_values);
    }

    #[test]
    fn correlated_branches_are_sound(seed in 0u64..2_000, a in -20i64..20, b in -20i64..20) {
        // Routines dense in repeated, nested and complementary guards over
        // the same comparison: the shapes that drive predicate inference
        // (§2.3) and φ-predication (§2.8) hardest. The full config must
        // stay sound both as an analysis and through the rewrite pipeline.
        let cfg = GenConfig {
            seed,
            target_stmts: 30,
            correlated_prob: 0.5,
            inference_prob: 0.25,
            diamond_prob: 0.15,
            ..Default::default()
        };
        let f = generate_function(&format!("corr{seed}"), &cfg, pgvn_ssa::SsaStyle::Pruned);
        check_soundness(&f, &GvnConfig::full(), &[a, b, a - b], seed);
        check_pipeline_equivalence(&f, GvnConfig::full(), &[a, b, a - b], seed);
    }

    #[test]
    fn correlated_branches_are_sound_in_every_mode(seed in 0u64..1_200, a in -20i64..20) {
        // Pessimistic mode keeps both edges of decided branches reachable,
        // which is exactly where φ-predication over ∅ edge predicates used
        // to miscompile (see tests/fixtures/oracle/).
        let cfg = GenConfig {
            seed,
            target_stmts: 25,
            correlated_prob: 0.4,
            unreachable_prob: 0.15,
            ..Default::default()
        };
        let f = generate_function(&format!("corrm{seed}"), &cfg, pgvn_ssa::SsaStyle::Pruned);
        for mode in [Mode::Optimistic, Mode::Balanced, Mode::Pessimistic] {
            check_soundness(&f, &GvnConfig::full().mode(mode), &[a, 7, -a], seed);
            check_pipeline_equivalence(&f, GvnConfig::full().mode(mode), &[a, 7, -a], seed);
        }
    }

    #[test]
    fn inference_heavy_routines_are_sound(seed in 0u64..1_200, a in -20i64..20, b in -20i64..20) {
        // Bias toward equality guards feeding value inference (§2.7) and
        // predicate inference (§2.3), with φ-predication enabled and
        // disabled — their interaction decides which congruences are keyed
        // by predicate expressions.
        let cfg = GenConfig {
            seed,
            target_stmts: 30,
            inference_prob: 0.4,
            correlated_prob: 0.2,
            ..Default::default()
        };
        let f = generate_function(&format!("inf{seed}"), &cfg, pgvn_ssa::SsaStyle::Pruned);
        let mut no_pp = GvnConfig::full();
        no_pp.phi_predication = false;
        for cfg in [GvnConfig::full(), no_pp] {
            check_soundness(&f, &cfg, &[a, b, b], seed ^ 0x77);
            check_pipeline_equivalence(&f, cfg, &[a, b, b], seed ^ 0x77);
        }
    }

    #[test]
    fn ssa_styles_do_not_affect_soundness(seed in 0u64..1_000, a in -20i64..20) {
        for style in [pgvn_ssa::SsaStyle::Minimal, pgvn_ssa::SsaStyle::SemiPruned, pgvn_ssa::SsaStyle::Pruned] {
            let cfg = GenConfig { seed, target_stmts: 20, ..Default::default() };
            let f = generate_function("styled", &cfg, style);
            check_soundness(&f, &GvnConfig::full(), &[a, 1, 2], seed);
        }
    }
}
