//! Integration tests for the telemetry layer: event sequences from real
//! runs, worklist monotonicity, stats JSON round-trips, and the
//! NullSink ≡ untraced equivalence.

use pgvn::core::{run, run_traced, GvnConfig, GvnStats};
use pgvn::prelude::*;
use pgvn::telemetry::{MemorySink, NullSink, Telemetry, TraceEvent};

/// A loop whose φs force the optimistic fixed point through more than
/// one RPO pass: `s` and `i` are mutually touched across the back edge.
const LOOP_SRC: &str = "routine f(n) {
    i = 0;
    s = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}";

/// Straight-line-plus-diamond acyclic control flow.
const ACYCLIC_SRC: &str = "routine g(a, b) {
    x = a + b;
    if (x > 0) {
        y = x * 2;
    } else {
        y = x * 3;
    }
    return y + x;
}";

fn trace(src: &str, cfg: &GvnConfig) -> (Vec<TraceEvent>, pgvn::core::GvnResults) {
    let func = compile(src, SsaStyle::Pruned).unwrap();
    let mut sink = MemorySink::new();
    let mut tel = Telemetry::with_sink(&mut sink);
    let results = run_traced(&func, cfg, &mut tel);
    (sink.events().to_vec(), results)
}

#[test]
fn memory_sink_sees_the_expected_event_sequence() {
    let (events, results) = trace(LOOP_SRC, &GvnConfig::full());
    assert!(results.stats.passes >= 2, "loop fixture should need 2+ passes");

    // Shape: ContextPrepare (session-level, before the run proper), then
    // RunStart, one PassStart/PassEnd pair per pass in order, RunEnd.
    // No profiling ⇒ no Phase events.
    assert!(matches!(events.first(), Some(TraceEvent::ContextPrepare { .. })));
    let events = &events[1..];
    assert!(matches!(events.first(), Some(TraceEvent::RunStart { .. })));
    assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })));
    let mut expected_pass = 0u32;
    let mut in_pass = false;
    for ev in &events[1..events.len() - 1] {
        match ev {
            TraceEvent::PassStart { pass, .. } => {
                assert!(!in_pass, "nested pass");
                expected_pass += 1;
                assert_eq!(*pass, expected_pass);
                in_pass = true;
            }
            TraceEvent::PassEnd { pass, .. } => {
                assert!(in_pass, "pass_end without pass_start");
                assert_eq!(*pass, expected_pass);
                in_pass = false;
            }
            other => panic!("unexpected event between runs: {other:?}"),
        }
    }
    assert!(!in_pass);
    assert_eq!(expected_pass, results.stats.passes);

    let Some(TraceEvent::RunStart { routine, num_insts, .. }) = events.first() else {
        unreachable!()
    };
    assert_eq!(routine, "f");
    assert_eq!(*num_insts, results.stats.num_insts);
    let Some(TraceEvent::RunEnd { passes, converged }) = events.last() else { unreachable!() };
    assert_eq!(*passes, results.stats.passes);
    assert!(converged);

    // The per-pass deltas must sum to the run totals.
    let (mut processed, mut merges) = (0u64, 0u64);
    for ev in events {
        if let TraceEvent::PassEnd { insts_processed, class_merges, .. } = ev {
            processed += insts_processed;
            merges += class_merges;
        }
    }
    assert_eq!(processed, results.stats.insts_processed);
    assert_eq!(merges, results.stats.class_merges);
}

#[test]
fn touched_counts_shrink_after_the_first_pass_on_acyclic_flow() {
    let (events, results) = trace(ACYCLIC_SRC, &GvnConfig::full());
    assert!(results.stats.converged);
    let starts: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PassStart { touched_insts, touched_blocks, .. } => {
                Some(touched_insts + touched_blocks)
            }
            _ => None,
        })
        .collect();
    // After the first pass has seeded the worklist, an acyclic routine
    // must only shed work: each pass starts with no more touched
    // entities than the previous one.
    for w in starts.windows(2).skip(1) {
        assert!(w[1] <= w[0], "worklist grew between passes: {starts:?}");
    }
    // And the fixed point empties it.
    let Some(TraceEvent::PassEnd { touched_insts, touched_blocks, .. }) =
        events.iter().rev().find(|e| matches!(e, TraceEvent::PassEnd { .. }))
    else {
        panic!("no pass_end events");
    };
    assert_eq!(touched_insts + touched_blocks, 0);
}

#[test]
fn gvn_stats_json_round_trips_every_field() {
    // Distinct value per field so a swapped pair cannot cancel out.
    let stats = GvnStats {
        passes: 3,
        insts_processed: 101,
        touches: 102,
        value_inference_visits: 103,
        predicate_inference_visits: 104,
        phi_predication_visits: 105,
        num_insts: 106,
        hash_cons_hits: 107,
        hash_cons_misses: 108,
        interned_exprs: 109,
        class_merges: 110,
        reassoc_cap_hits: 111,
        vi_gate_skips: 112,
        pi_gate_skips: 113,
        vi_cache_hits: 114,
        vi_cache_misses: 116,
        vi_cache_evictions: 117,
        pi_cache_hits: 115,
        converged: true,
        outcome: pgvn::core::RunOutcome::Converged,
        ladder_rung: 1,
        ladder_failures: 2,
    };
    let round = GvnStats::from_json(&stats.to_json()).unwrap();
    assert_eq!(round, stats);

    // And from a real run, including default/zero fields.
    let func = compile(LOOP_SRC, SsaStyle::Pruned).unwrap();
    let live = run(&func, &GvnConfig::full()).stats;
    assert_eq!(GvnStats::from_json(&live.to_json()).unwrap(), live);

    assert!(GvnStats::from_json("{}").is_err());
    assert!(GvnStats::from_json("not json").is_err());
}

#[test]
fn null_sink_matches_untraced_run_exactly() {
    for src in [LOOP_SRC, ACYCLIC_SRC, pgvn::lang::fixtures::FIGURE1] {
        let func = compile(src, SsaStyle::Pruned).unwrap();
        for cfg in [GvnConfig::full(), GvnConfig::click(), GvnConfig::sccp()] {
            let plain = run(&func, &cfg);
            let mut sink = NullSink;
            let mut tel = Telemetry::with_sink(&mut sink);
            let traced = run_traced(&func, &cfg, &mut tel);
            assert_eq!(plain.stats, traced.stats);
            assert_eq!(plain.strength(), traced.strength());
            for v in func.values() {
                assert_eq!(plain.class_of(v), traced.class_of(v));
            }
        }
    }
}
