//! End-to-end tests of the pass-manager layer: `--passes` spec
//! threading through CLI, batch and serve, malformed-spec diagnostics,
//! analysis-cache behavior, determinism of explicit pipelines, and
//! differential validation of every PRE-containing sequence against
//! the reference interpreter.

use pgvn::batch::{run_batch, BatchInput, BatchOptions};
use pgvn::prelude::*;
use pgvn::serve::proto::{read_frame, write_frame, FrameEvent};
use pgvn::serve::{serve_duplex, ServeOptions, ServeSummary};
use pgvn::telemetry::json::{parse, JsonValue};
use pgvn::telemetry::{Metric, MetricsRegistry, NullSink, Telemetry};
use std::os::unix::net::UnixStream;
use std::process::Command;

fn pgvn_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pgvn"))
}

/// The pinned corpus both determinism tests share: same seed
/// derivation as `pgvn batch --gen N --seed 2002`.
fn gen_inputs(n: u64) -> Vec<BatchInput> {
    (0..n)
        .map(|i| {
            let seed = pgvn::oracle::mix64(2002 ^ pgvn::oracle::mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("passes_{i}"), &gcfg);
            BatchInput {
                name: format!("passes_{i}"),
                source: Ok(pgvn::lang::print_routine(&routine)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Malformed specs: CLI diagnostics and serve protocol errors
// ---------------------------------------------------------------------

#[test]
fn malformed_passes_specs_exit_2_with_a_one_line_diagnostic() {
    // Unknown pass, empty element, trailing comma, empty spec: each is
    // a usage error (exit 2) with exactly one diagnostic line naming
    // the flag, on both the batch and the single-routine paths.
    for spec in ["warp", "gvn,,gvn", "gvn,", ""] {
        for head in [&["batch", "--gen", "1"][..], &[][..]] {
            let out = pgvn_cmd().args(head).args(["--passes", spec]).output().expect("spawns");
            assert_eq!(out.status.code(), Some(2), "spec {spec:?} via {head:?}");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(stderr.contains("--passes"), "names the flag: {stderr}");
            assert_eq!(
                stderr.trim().lines().count(),
                1,
                "one-line diagnostic for {spec:?}: {stderr}"
            );
        }
    }
    // A dangling `--passes` with no argument is the same usage error.
    let out = pgvn_cmd().args(["batch", "--gen", "1", "--passes"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--passes"));
}

#[test]
fn well_formed_passes_flag_is_accepted_by_the_batch_cli() {
    let out = pgvn_cmd()
        .args(["batch", "--gen", "4", "--passes", "gvn,pre,cleanup"])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().filter(|l| l.contains("\"outcome\"")).count(), 4);
}

/// Minimal duplex-serve roundtrip (same shape as tests/serve.rs):
/// send every frame, half-close, collect all responses.
fn serve_roundtrip(opts: &ServeOptions, frames: Vec<Vec<u8>>) -> (Vec<String>, ServeSummary) {
    let (client, server_sock) = UnixStream::pair().expect("socketpair");
    let server_reader = server_sock.try_clone().expect("server clone");
    let mut responses = None;
    let mut summary = None;
    std::thread::scope(|s| {
        let server = s.spawn(|| serve_duplex(server_reader, server_sock, opts));
        let mut reader = client.try_clone().expect("client clone");
        let read_all = s.spawn(move || {
            let mut out = Vec::new();
            let mut never = || false;
            while let Ok(FrameEvent::Frame(p)) = read_frame(&mut reader, 1 << 24, &mut never) {
                out.push(String::from_utf8(p).expect("responses are UTF-8"));
            }
            out
        });
        let mut w = client;
        for f in &frames {
            write_frame(&mut w, f).expect("client write");
        }
        w.shutdown(std::net::Shutdown::Write).expect("half-close");
        responses = Some(read_all.join().expect("reader thread"));
        summary = Some(server.join().expect("server thread"));
    });
    (responses.unwrap(), summary.unwrap())
}

#[test]
fn serve_malformed_passes_is_a_protocol_error_and_the_connection_survives() {
    let (responses, summary) = serve_roundtrip(
        &ServeOptions::default(),
        vec![
            br#"{"id":1,"name":"a","gen_seed":7,"passes":"warp"}"#.to_vec(),
            br#"{"id":2,"name":"a","gen_seed":7,"passes":"gvn,,gvn"}"#.to_vec(),
            br#"{"id":3,"name":"a","gen_seed":7,"passes":"gvn,pre,gvn"}"#.to_vec(),
        ],
    );
    assert_eq!(responses.len(), 3, "{responses:?}");
    let mut errors = 0;
    let mut records = 0;
    for r in &responses {
        let v = parse(r).expect("valid JSON");
        match v.get("reply").and_then(JsonValue::as_str) {
            Some("error") => {
                errors += 1;
                assert_eq!(v.get("error").and_then(JsonValue::as_str), Some("protocol"), "{r}");
                let detail = v.get("detail").and_then(JsonValue::as_str).unwrap_or_default();
                assert!(detail.starts_with("passes:"), "detail names the field: {r}");
            }
            Some("record") => records += 1,
            other => panic!("unexpected reply {other:?} in {r}"),
        }
    }
    assert_eq!((errors, records), (2, 1));
    assert_eq!(summary.protocol_errors, 2);
    assert_eq!(summary.records, 1);
    assert!(summary.is_clean(), "malformed specs never kill the loop");
}

// ---------------------------------------------------------------------
// Determinism and default-pipeline identity
// ---------------------------------------------------------------------

#[test]
fn explicit_gvn_gvn_spec_is_byte_identical_to_the_default_pipeline() {
    // The default pipeline is `rounds` gvn passes; spelling it out as
    // an explicit spec must not change a single output byte.
    let inputs = gen_inputs(24);
    let default = run_batch(&inputs, &BatchOptions::default());
    let explicit = run_batch(
        &inputs,
        &BatchOptions { passes: Some("gvn,gvn".parse().unwrap()), ..Default::default() },
    );
    assert_eq!(default.records.len(), explicit.records.len());
    for (d, e) in default.records.iter().zip(explicit.records.iter()) {
        assert_eq!(d.json, e.json, "explicit gvn,gvn diverged from the default pipeline");
    }
}

#[test]
fn pre_pipeline_batch_is_deterministic_across_worker_counts() {
    let inputs = gen_inputs(24);
    let spec: PassSpec = "gvn,pre,gvn".parse().unwrap();
    let j1 = run_batch(
        &inputs,
        &BatchOptions { passes: Some(spec.clone()), jobs: 1, ..Default::default() },
    );
    let j4 =
        run_batch(&inputs, &BatchOptions { passes: Some(spec), jobs: 4, ..Default::default() });
    assert_eq!(j1.records.len(), j4.records.len());
    for (a, b) in j1.records.iter().zip(j4.records.iter()) {
        assert_eq!(a.json, b.json, "PRE pipeline must stay jobs-count deterministic");
    }
}

// ---------------------------------------------------------------------
// Analysis caching
// ---------------------------------------------------------------------

#[test]
fn multi_pass_pipelines_reuse_cached_analyses() {
    // A straight-line merge-heavy routine whose CFG survives UCE
    // untouched, so the analyses computed by the first gvn pass stay
    // valid for pre and show up as cache hits.
    let src = "routine f(a, b, c) {
        if (c > 0) { x = a + b; } else { x = a - b; }
        y = a + b;
        return x + y;
    }";
    let mut f = compile(src, SsaStyle::Pruned).unwrap();
    let reg = MetricsRegistry::new();
    let mut sink = NullSink;
    let mut tel = Telemetry::with_sink(&mut sink);
    tel.attach_metrics(&reg);
    Pipeline::new(GvnConfig::full())
        .passes("gvn,pre,gvn".parse().unwrap())
        .optimize_traced(&mut f, &mut tel);
    let snap = reg.snapshot();
    assert_eq!(snap.value(Metric::PassRuns), 3, "one run per pipeline element");
    assert!(
        snap.value(Metric::AnalysisCacheHits) >= 1,
        "pre reuses the analyses its gvn predecessor computed: {}",
        snap.value(Metric::AnalysisCacheHits)
    );
    assert!(snap.value(Metric::AnalysisCacheMisses) >= 1, "first computation is a miss");
}

// ---------------------------------------------------------------------
// Differential validation of PRE-containing pipelines
// ---------------------------------------------------------------------

#[test]
fn pre_pipelines_match_the_reference_interpreter_on_the_fuzz_corpus() {
    // Every PRE-containing sequence must be semantics-preserving on
    // the CI fuzz corpus: optimize each generated routine under each
    // spec and compare against the unoptimized original under the
    // reference interpreter, multiple argument vectors per routine.
    let specs: Vec<PassSpec> =
        ["gvn,pre,gvn", "gvn,pre,cleanup", "pre,gvn"].iter().map(|s| s.parse().unwrap()).collect();
    for i in 0..40u64 {
        let seed = pgvn::oracle::mix64(2002 ^ pgvn::oracle::mix64(i));
        let gcfg = pgvn::workload::GenConfig { seed, ..Default::default() };
        let routine = pgvn::workload::generate_routine(&format!("diff_{i}"), &gcfg);
        let src = pgvn::lang::print_routine(&routine);
        let original = compile(&src, SsaStyle::Pruned).unwrap();
        let nparams = original.params().len();
        for spec in &specs {
            let mut opt = original.clone();
            let report = Pipeline::new(GvnConfig::full()).passes(spec.clone()).optimize(&mut opt);
            pgvn::ir::assert_verifies(&opt);
            for round in 0..3u64 {
                let args: Vec<i64> = (0..nparams as u64)
                    .map(|k| pgvn::oracle::mix64(seed ^ round.wrapping_mul(31) ^ k) as i64 % 1000)
                    .collect();
                let mut o1 = HashedOpaques::new(round);
                let mut o2 = HashedOpaques::new(round);
                let r1 = Interpreter::new(&original).fuel(5_000_000).run(&args, &mut o1).unwrap();
                let r2 = Interpreter::new(&opt).fuel(5_000_000).run(&args, &mut o2).unwrap();
                assert_eq!(
                    r1, r2,
                    "routine diff_{i} diverged under {spec} on {args:?}\nreport: {report:?}"
                );
            }
        }
    }
}
