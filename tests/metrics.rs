//! Integration tests of the metrics layer: registry snapshot
//! determinism under parallel batches, histogram bucket boundaries,
//! snapshot JSON round-trips, the metrics-attached ≡ untraced results
//! equivalence behind the "<2% disabled overhead" guard, and the
//! proptest that [`GvnStats::merge`] is associative and commutative.

use pgvn::batch::{run_batch, BatchInput, BatchOptions};
use pgvn::core::{run, run_traced, GvnConfig, GvnStats, RunOutcome};
use pgvn::oracle::mix64;
use pgvn::prelude::*;
use pgvn::telemetry::metrics::{bucket_bound, bucket_index};
use pgvn::telemetry::{Metric, MetricsRegistry, MetricsSnapshot, Telemetry, METRICS, NUM_BUCKETS};
use proptest::prelude::*;

fn gen_inputs(n: u64, seed: u64) -> Vec<BatchInput> {
    (0..n)
        .map(|i| {
            let gen_seed = mix64(seed ^ mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("m_{i}"), &gcfg);
            BatchInput { name: format!("m_{i}"), source: Ok(pgvn::lang::print_routine(&routine)) }
        })
        .collect()
}

#[test]
fn stable_snapshots_are_deterministic_across_worker_counts() {
    let inputs = gen_inputs(16, 2002);
    let seq = run_batch(&inputs, &BatchOptions { jobs: 1, ..Default::default() });
    let par = run_batch(&inputs, &BatchOptions { jobs: 4, ..Default::default() });
    assert_eq!(seq.metrics, par.metrics, "stable metrics must not depend on --jobs");
    assert_eq!(seq.metrics.to_json(), par.metrics.to_json());
    // And the stable snapshot actually carries analysis signal.
    assert_eq!(seq.metrics.value(Metric::DriverRuns), par.metrics.value(Metric::DriverRuns));
    assert!(seq.metrics.value(Metric::DriverRuns) > 0);
    assert!(seq.metrics.count(Metric::DriverPasses) > 0);
    assert!(seq.metrics.value(Metric::InternerHits) > 0);
}

#[test]
fn histogram_buckets_sit_on_power_of_two_boundaries() {
    // Bucket 0 holds exactly zero; bucket i holds 2^(i-1)..=2^i - 1; the
    // last bucket is the open overflow range.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_bound(0), Some(0));
    for i in 1..NUM_BUCKETS - 1 {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
        assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
        assert_eq!(bucket_bound(i), Some(hi));
        assert_eq!(bucket_index(hi + 1), (i + 1).min(NUM_BUCKETS - 1), "first value past {i}");
    }
    assert_eq!(bucket_bound(NUM_BUCKETS - 1), None, "last bucket is open");
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);

    let reg = MetricsRegistry::new();
    for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
        reg.observe(Metric::DriverPasses, v);
    }
    let snap = reg.snapshot();
    assert_eq!(snap.count(Metric::DriverPasses), 8);
    assert_eq!(snap.bucket(Metric::DriverPasses, 0), 1, "one zero");
    assert_eq!(snap.bucket(Metric::DriverPasses, 1), 1, "just 1");
    assert_eq!(snap.bucket(Metric::DriverPasses, 2), 2, "2 and 3");
    assert_eq!(snap.bucket(Metric::DriverPasses, 3), 1, "just 4");
    assert_eq!(snap.bucket(Metric::DriverPasses, 10), 1, "1023");
    assert_eq!(snap.bucket(Metric::DriverPasses, 11), 1, "1024");
    assert_eq!(snap.bucket(Metric::DriverPasses, NUM_BUCKETS - 1), 1, "overflow");
}

#[test]
fn snapshot_json_round_trips_from_a_real_run() {
    let func = compile(
        "routine f(n) { i = 0; s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        SsaStyle::Pruned,
    )
    .unwrap();
    let reg = MetricsRegistry::new();
    let mut tel = Telemetry::off();
    tel.attach_metrics(&reg);
    run_traced(&func, &GvnConfig::full(), &mut tel);
    let snap = reg.snapshot();
    assert!(snap.value(Metric::DriverRuns) == 1);
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses back");
    assert_eq!(back, snap, "snapshot JSON round-trips losslessly");
    for m in METRICS {
        assert_eq!(back.value(m), snap.value(m), "{}", m.name());
    }
}

#[test]
fn attaching_metrics_never_changes_analysis_results() {
    // The companion of the NullSink ≡ untraced equivalence: recording
    // metrics must be observation-only. (The timing side of the claim —
    // a disabled handle costs <2% — is guarded by the
    // `telemetry_overhead` / `metrics_overhead` micro benches.)
    for seed in 0..8u64 {
        let gcfg = pgvn::workload::GenConfig { seed: mix64(seed), ..Default::default() };
        let routine = pgvn::workload::generate_routine("f", &gcfg);
        let func = compile(&pgvn::lang::print_routine(&routine), SsaStyle::Pruned).unwrap();
        let cfg = GvnConfig::full();
        let plain = run(&func, &cfg);
        let reg = MetricsRegistry::new();
        let mut tel = Telemetry::off();
        tel.attach_metrics(&reg);
        let metered = run_traced(&func, &cfg, &mut tel);
        assert_eq!(plain.stats, metered.stats, "seed {seed}");
        assert_eq!(plain.partition(), metered.partition(), "seed {seed}");
        assert!(reg.snapshot().value(Metric::DriverRuns) > 0);
    }
}

/// An arbitrary-but-consistent `GvnStats`: every counter from the seed,
/// with the one representable-state constraint the driver guarantees —
/// a `NotRun` outcome (an untouched accumulator) never claims
/// `converged`.
fn stats_from_seed(seed: u64) -> GvnStats {
    let r = |i: u64| mix64(seed.wrapping_add(mix64(i))) >> 32;
    let outcome = match r(20) % 6 {
        0 => RunOutcome::NotRun,
        1 => RunOutcome::Converged,
        2 => RunOutcome::NonConverged,
        3 => RunOutcome::BudgetPasses,
        4 => RunOutcome::BudgetTime,
        _ => RunOutcome::BudgetWork,
    };
    GvnStats {
        passes: r(0) as u32,
        insts_processed: r(1),
        touches: r(2),
        value_inference_visits: r(3),
        predicate_inference_visits: r(4),
        phi_predication_visits: r(5),
        num_insts: r(6),
        hash_cons_hits: r(7),
        hash_cons_misses: r(8),
        interned_exprs: r(9),
        class_merges: r(10),
        reassoc_cap_hits: r(11),
        vi_gate_skips: r(12),
        pi_gate_skips: r(13),
        vi_cache_hits: r(14),
        vi_cache_misses: r(15),
        vi_cache_evictions: r(16),
        pi_cache_hits: r(17),
        converged: outcome != RunOutcome::NotRun && r(21) % 2 == 0,
        outcome,
        ladder_rung: (r(18) % 4) as u32,
        ladder_failures: (r(19) % 4) as u32,
    }
}

fn merged(a: &GvnStats, b: &GvnStats) -> GvnStats {
    let mut out = *a;
    out.merge(b);
    out
}

fn cases() -> u32 {
    std::env::var("PGVN_PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn gvn_stats_merge_is_commutative(x in 0u64..100_000, y in 0u64..100_000) {
        let (a, b) = (stats_from_seed(x), stats_from_seed(y));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn gvn_stats_merge_is_associative(
        x in 0u64..100_000,
        y in 0u64..100_000,
        z in 0u64..100_000,
    ) {
        let (a, b, c) = (stats_from_seed(x), stats_from_seed(y), stats_from_seed(z));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn gvn_stats_merge_has_default_identity(x in 0u64..100_000) {
        let a = stats_from_seed(x);
        prop_assert_eq!(merged(&a, &GvnStats::default()), a);
        prop_assert_eq!(merged(&GvnStats::default(), &a), a);
    }

    #[test]
    fn gvn_stats_json_round_trips(x in 0u64..100_000) {
        let a = stats_from_seed(x);
        let back = GvnStats::from_json(&a.to_json()).expect("parses back");
        prop_assert_eq!(back, a);
    }
}
