//! Session-context tests: a long-lived [`GvnContext`] shared across a
//! routine stream must behave exactly like a fresh context per routine,
//! and nothing cached in one run (predicate/value inferences, interned
//! expressions, class structure) may leak into the next.

use pgvn::core::{run, run_in_context, GvnConfig, GvnContext, GvnResults, Mode};
use pgvn::ir::{Function, InstKind};
use pgvn::prelude::*;

fn compile_src(src: &str) -> Function {
    compile(src, SsaStyle::Pruned).unwrap()
}

fn corpus(n: u64, seed: u64) -> Vec<Function> {
    (0..n)
        .map(|i| {
            let gen_seed = pgvn::oracle::mix64(seed ^ pgvn::oracle::mix64(i));
            let gcfg = pgvn::workload::GenConfig { seed: gen_seed, ..Default::default() };
            let routine = pgvn::workload::generate_routine(&format!("s_{i}"), &gcfg);
            compile_src(&pgvn::lang::print_routine(&routine))
        })
        .collect()
}

/// The configurations a session is expected to interleave freely.
fn session_configs() -> Vec<GvnConfig> {
    vec![
        GvnConfig::full(),
        GvnConfig::extended(),
        GvnConfig::click(),
        GvnConfig::sccp(),
        GvnConfig::awz(),
        GvnConfig::full().mode(Mode::Balanced),
        GvnConfig::full().mode(Mode::Pessimistic),
    ]
}

fn assert_same_results(func: &Function, shared: &GvnResults, fresh: &GvnResults, what: &str) {
    assert_eq!(shared.stats, fresh.stats, "{what}: stats diverged");
    assert_eq!(shared.partition(), fresh.partition(), "{what}: partition diverged");
    for b in func.blocks() {
        assert_eq!(
            shared.is_block_reachable(b),
            fresh.is_block_reachable(b),
            "{what}: reachability of {b} diverged"
        );
    }
    for e in func.edges() {
        assert_eq!(
            shared.is_edge_reachable(e),
            fresh.is_edge_reachable(e),
            "{what}: reachability of {e} diverged"
        );
    }
}

/// The tentpole equivalence: one context across a whole generated
/// corpus, under every configuration, must reproduce the fresh-context
/// analysis bit for bit.
#[test]
fn shared_context_matches_fresh_context_over_a_corpus() {
    let funcs = corpus(12, 2002);
    let mut ctx = GvnContext::new();
    for cfg in session_configs() {
        for (i, f) in funcs.iter().enumerate() {
            let shared = run_in_context(&mut ctx, f, &cfg);
            let fresh = run(f, &cfg);
            assert_same_results(f, &shared, &fresh, &format!("routine {i} under {cfg:?}"));
        }
    }
    // Every (config × routine) analysis reused the same arenas.
    assert_eq!(ctx.runs(), 7 * 12);
}

/// The same equivalence one layer up: `Pipeline::optimize_with` against
/// a shared context rewrites the function identically to the
/// throwaway-context `optimize`.
#[test]
fn pipeline_with_shared_context_rewrites_identically() {
    let funcs = corpus(8, 7);
    let mut ctx = GvnContext::new();
    let pipeline = Pipeline::new(GvnConfig::full()).rounds(2);
    for (i, f) in funcs.iter().enumerate() {
        let mut shared = f.clone();
        let mut fresh = f.clone();
        let rs = pipeline.optimize_with(&mut ctx, &mut shared);
        let rf = pipeline.optimize(&mut fresh);
        assert_eq!(shared.to_string(), fresh.to_string(), "routine {i}: rewrites diverged");
        assert_eq!(rs.gvn_stats, rf.gvn_stats, "routine {i}");
        assert_eq!(rs.constants_propagated, rf.constants_propagated, "routine {i}");
        assert_eq!(rs.redundancies_eliminated, rf.redundancies_eliminated, "routine {i}");
        assert_eq!(rs.dead_removed, rf.dead_removed, "routine {i}");
    }
}

/// Targeted cross-run isolation: routine `a` populates the inference
/// caches with "x is 5 under this guard" facts; routine `b` has the
/// *same shape* — identical block and value indices — but guards on 7.
/// A stale cache entry surviving `prepare()` would alias by index and
/// fold `b`'s guarded region to 5.
#[test]
fn cached_inference_from_one_run_cannot_leak_into_the_next() {
    let a = compile_src("routine a(x) { if (x == 5) { y = x + 0; return y; } return 0; }");
    let b = compile_src("routine b(x) { if (x == 7) { y = x + 0; return y; } return 0; }");
    for cfg in session_configs() {
        let mut ctx = GvnContext::new();
        let ra = run_in_context(&mut ctx, &a, &cfg);
        let rb = run_in_context(&mut ctx, &b, &cfg);
        let fresh = run(&b, &cfg);
        assert_same_results(&b, &rb, &fresh, &format!("b after a under {cfg:?}"));
        // The sharpest form of the leak: no value of `b` may be proven
        // equal to 5 — that constant exists only in `a`'s world.
        for v in b.values() {
            assert_ne!(rb.constant_value(v), Some(5), "stale 5 leaked into {v} under {cfg:?}");
        }
        // Sanity for the full configuration: the caches really were
        // populated — `a`'s guarded return folds to 5, `b`'s to 7.
        if cfg == GvnConfig::full() {
            assert!(b.values().any(|v| rb.constant_value(v) == Some(7)), "b folds under full");
            assert!(a.values().any(|v| ra.constant_value(v) == Some(5)), "a folds under full");
        }
    }
}

/// The satellite audit's test: an inference cached while exploring a
/// region the final fixed point proves unreachable must not surface in
/// the final partition. The inner guard would fold `y` to `x` with a
/// "x is 5" fact live; outside the dead region `y = x + 0` must stay
/// congruent to the parameter, never constant.
#[test]
fn inference_from_an_unreachable_region_cannot_reach_the_final_partition() {
    let src = "routine f(x) {
        if (1 == 2) {
            if (x == 5) { d = x + 1; return d; }
            return 6;
        }
        y = x + 0;
        return y;
    }";
    let f = compile_src(src);
    let live_return = {
        // The reachable return is the one whose block survives analysis.
        let res = run(&f, &GvnConfig::full());
        f.blocks()
            .filter(|&b| res.is_block_reachable(b))
            .filter_map(|b| f.terminator(b))
            .find_map(|t| match f.kind(t) {
                InstKind::Return(v) => Some(*v),
                _ => None,
            })
            .expect("a reachable return")
    };
    let mut ctx = GvnContext::new();
    for cfg in session_configs() {
        let res = run_in_context(&mut ctx, &f, &cfg);
        assert_eq!(
            res.constant_value(live_return),
            None,
            "dead-region inference leaked a constant under {cfg:?}"
        );
        // End to end: the optimized routine must still echo its input.
        let mut opt = f.clone();
        Pipeline::new(cfg.clone()).rounds(2).optimize_with(&mut ctx, &mut opt);
        let mut o = pgvn::ir::HashedOpaques::new(0);
        assert_eq!(pgvn::ir::Interpreter::new(&opt).run(&[9], &mut o), Ok(9), "under {cfg:?}");
    }
}

/// Clearing is rollback-safe: after a mid-run panic (injected fault in a
/// debug-only knob), the poisoned context must serve the next routine
/// exactly like a fresh one.
#[test]
fn context_survives_a_panicking_run() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let good = compile_src("routine g(a, b) { x = a + b; y = b + a; return x - y; }");
    let mut ctx = GvnContext::new();
    let cfg = GvnConfig::full()
        .fault_plan(Some(pgvn::core::FaultPlan::parse("panic@eval").unwrap().sticky()));
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let attempt = catch_unwind(AssertUnwindSafe(|| run_in_context(&mut ctx, &good, &cfg)));
    std::panic::set_hook(prev);
    assert!(attempt.is_err(), "the injected fault must fire");
    let shared = run_in_context(&mut ctx, &good, &GvnConfig::full());
    let fresh = run(&good, &GvnConfig::full());
    assert_same_results(&good, &shared, &fresh, "after a panicked run");
}

/// A warmed context stops growing: replaying the same corpus must not
/// enlarge any arena, and the run counter keeps advancing.
#[test]
fn warm_context_capacities_are_stable() {
    let funcs = corpus(10, 11);
    let cfg = GvnConfig::full();
    let mut ctx = GvnContext::new();
    for f in &funcs {
        run_in_context(&mut ctx, f, &cfg);
    }
    let warm = ctx.capacities();
    let runs = ctx.runs();
    for f in &funcs {
        run_in_context(&mut ctx, f, &cfg);
    }
    assert_eq!(ctx.capacities(), warm, "replaying a seen corpus must not grow the arenas");
    assert_eq!(ctx.runs(), runs + funcs.len() as u64);
}
