//! Nested panic-hook silencing: `pgvn serve` and the fuzz oracle both
//! take the refcounted [`pgvn::oracle::silence_panic_hook`] guard, and
//! nesting them (a serve session inside a fuzz-style guard) must keep
//! the hook silent for the whole union of their lifetimes and restore
//! the original hook exactly once afterwards.
//!
//! This test lives alone in its own integration-test binary because it
//! asserts on the process-global panic hook; sharing a process with
//! other tests that take the guard would race the refcount.

use pgvn::serve::proto::{read_frame, write_frame, FrameEvent};
use pgvn::serve::{serve_duplex, ServeOptions};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};

static SENTINEL_CALLS: AtomicUsize = AtomicUsize::new(0);

#[test]
fn nested_serve_and_fuzz_guards_silence_once_and_restore_once() {
    // Install a sentinel hook so we can observe exactly when panics
    // become audible again.
    std::panic::set_hook(Box::new(|_| {
        SENTINEL_CALLS.fetch_add(1, Ordering::SeqCst);
    }));

    {
        // Outer guard: what the fuzz oracle takes around a campaign.
        let _fuzz_guard = pgvn::oracle::silence_panic_hook();

        // Inner guard: serve_duplex takes its own for the session, and
        // drives panic-injected requests through catch_unwind.
        let opts = ServeOptions::default();
        let (client, server) = UnixStream::pair().expect("socketpair");
        let server_reader = server.try_clone().expect("server clone");
        let summary = std::thread::scope(|s| {
            let srv = s.spawn(|| serve_duplex(server_reader, server, &opts));
            let mut w = client.try_clone().expect("client clone");
            let mut r = client;
            for id in 1..=4u64 {
                let req = format!(
                    r#"{{"id":{id},"gen_seed":{id},"inject":"panic@eval","inject_seed":2002,"inject_sticky":true}}"#
                );
                write_frame(&mut w, req.as_bytes()).expect("write");
                let mut never = || false;
                match read_frame(&mut r, 1 << 24, &mut never) {
                    Ok(FrameEvent::Frame(p)) => {
                        let resp = String::from_utf8(p).expect("UTF-8");
                        assert!(resp.contains("\"reply\":\"record\""), "{resp}");
                    }
                    other => panic!("request unanswered: {other:?}"),
                }
            }
            w.shutdown(std::net::Shutdown::Write).expect("half-close");
            srv.join().expect("server thread")
        });
        assert!(summary.absorbed_panics > 0, "injected panics were absorbed");
        assert_eq!(summary.escaped_panics, 0);
        assert_eq!(
            SENTINEL_CALLS.load(Ordering::SeqCst),
            0,
            "absorbed panics never reached the sentinel hook"
        );

        // The serve session is over but the outer fuzz guard is still
        // alive: the hook must still be silenced.
        let _ = std::panic::catch_unwind(|| panic!("still silent"));
        assert_eq!(
            SENTINEL_CALLS.load(Ordering::SeqCst),
            0,
            "dropping the inner guard must not restore the hook early"
        );
    }

    // Both guards dropped: the sentinel is back.
    let _ = std::panic::catch_unwind(|| panic!("audible again"));
    assert_eq!(
        SENTINEL_CALLS.load(Ordering::SeqCst),
        1,
        "dropping the last guard restores the saved hook"
    );
    let _ = std::panic::take_hook();
}
