//! Full-stack reproductions of the paper's worked examples and §3
//! remarks, driven through the facade crate (source → SSA → analysis →
//! transforms → execution).

use pgvn::core::run as gvn;
use pgvn::ir::{Function, HashedOpaques, InstKind, Interpreter};
use pgvn::lang::fixtures;
use pgvn::prelude::{compile, GvnConfig, Mode, Pipeline, SsaStyle};

fn build(src: &str) -> Function {
    compile(src, SsaStyle::Minimal).expect("compiles")
}

fn returned_constant(f: &Function, cfg: &GvnConfig) -> Option<i64> {
    let results = gvn(f, cfg);
    assert!(results.stats.converged);
    let consts: Vec<Option<i64>> = f
        .blocks()
        .filter(|&b| results.is_block_reachable(b))
        .filter_map(|b| f.terminator(b))
        .filter_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(results.constant_value(*v)),
            _ => None,
        })
        .collect();
    let first = consts.first().copied().flatten()?;
    consts.iter().all(|&c| c == Some(first)).then_some(first)
}

// -----------------------------------------------------------------------
// Figure 1 end-to-end through the pipeline
// -----------------------------------------------------------------------

#[test]
fn figure1_pipeline_produces_return_one() {
    let mut f = build(fixtures::FIGURE1);
    let original = f.clone();
    Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut f);
    pgvn::ir::assert_verifies(&f);
    // The reachable return is a constant 1 after optimization.
    let ret = f
        .blocks()
        .filter_map(|b| f.terminator(b))
        .find_map(|t| match f.kind(t) {
            InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .expect("return remains");
    assert_eq!(f.value_as_const(ret), Some(1));
    // Still semantically identical.
    for args in [[5, 5, 9], [0, 1, 2], [9, 9, 100]] {
        let r1 = Interpreter::new(&original).run(&args, &mut HashedOpaques::new(0)).unwrap();
        let r2 = Interpreter::new(&f).run(&args, &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, 1);
    }
}

// -----------------------------------------------------------------------
// Figure 6 / Figure 13 through every SSA style
// -----------------------------------------------------------------------

#[test]
fn figure6_value_inference_chain_all_styles() {
    let twin = "routine t(I, J, K) {
        if (K == J) { if (J == I) { return (K + 1) - (I + 1); } }
        return 0;
    }";
    for style in [SsaStyle::Minimal, SsaStyle::SemiPruned, SsaStyle::Pruned] {
        let f = compile(twin, style).unwrap();
        assert_eq!(returned_constant(&f, &GvnConfig::full()), Some(0), "{style:?}");
    }
}

#[test]
fn figure13_unified_beats_prepass() {
    let f = build(fixtures::FIGURE13);
    // I + J folds to 0 in the K == 0 branch, so both returns are... the
    // then-branch returns 0, the else 1; check the then-branch constant
    // via the dedicated twin that returns from one arm only.
    let r = gvn(&f, &GvnConfig::full());
    assert!(r.stats.converged);
    let twin = build(
        "routine t(K) {
            L = K + 0;
            if (K == 0) { I = K; J = L; return I + J; }
            return 0;
        }",
    );
    assert_eq!(returned_constant(&twin, &GvnConfig::full()), Some(0));
}

// -----------------------------------------------------------------------
// §2.7: value inference bias toward lower-ranked (dominating) definitions
// -----------------------------------------------------------------------

#[test]
fn inference_substitutes_lower_ranked_variable() {
    // Inside `if (y == x)` where x is defined first (lower rank), uses of
    // y become uses of x: y - x is 0.
    let src = "routine f(x) {
        y = opaque(1);
        if (y == x) { return y - x; }
        return 0;
    }";
    assert_eq!(returned_constant(&build(src), &GvnConfig::full()), Some(0));
}

// -----------------------------------------------------------------------
// §3: "converting while to until loops can reduce the effectiveness of
// predicate and value inference"
// -----------------------------------------------------------------------

#[test]
fn while_to_until_conversion_loses_inference() {
    // In the while form, the loop body is dominated by the true edge of
    // `i != n`, so `(i == n)` folds to 0 inside the body.
    let while_form = "routine w(n) {
        s = 0;
        i = 0;
        while (i != n) {
            s = s + (i == n);
            i = i + 1;
        }
        return s;
    }";
    // The equivalent bottom-tested (until) form: the body is no longer
    // dominated by the guard edge, so the inference is unavailable.
    let until_form = "routine u(n) {
        s = 0;
        i = 0;
        if (i != n) {
            do {
                s = s + (i == n);
                i = i + 1;
            } while (i != n);
        }
        return s;
    }";
    assert_eq!(returned_constant(&build(while_form), &GvnConfig::full()), Some(0));
    assert_eq!(returned_constant(&build(until_form), &GvnConfig::full()), None);
    // Both versions actually return 0 (the inference claim is about what
    // is *provable*, not about behaviour).
    for n in [0i64, 1, 5] {
        let w = Interpreter::new(&build(while_form)).run(&[n], &mut HashedOpaques::new(0)).unwrap();
        let u = Interpreter::new(&build(until_form)).run(&[n], &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(w, 0);
        assert_eq!(u, 0);
    }
}

// -----------------------------------------------------------------------
// §3: pruned SSA can reduce the effectiveness of global value numbering
// -----------------------------------------------------------------------

#[test]
fn pruned_ssa_can_lose_congruences() {
    // A variable dead at the join gets no φ under pruning; a later
    // *recomputation* of the same merge diamond then has nothing to be
    // congruent to. With minimal SSA both φs exist and unify through
    // φ-predication. Construct a case where the φ carries information:
    let src = "routine f(c, x, y) {
        if (c < 3) { a = x; } else { a = y; }
        u = a;           // keep `a` live so even pruned SSA placed a φ
        if (c < 3) { b = x; } else { b = y; }
        return (u - b);
    }";
    for style in [SsaStyle::Minimal, SsaStyle::Pruned] {
        let f = compile(src, style).unwrap();
        assert_eq!(returned_constant(&f, &GvnConfig::full()), Some(0), "{style:?}");
    }
}

// -----------------------------------------------------------------------
// Emulation sanity on the examples
// -----------------------------------------------------------------------

#[test]
fn emulations_rank_correctly_on_simple_inference() {
    let f = build(fixtures::SIMPLE_INFERENCE);
    // return K + 5 inside K == 0 → 5; the other return is 5 too.
    assert_eq!(returned_constant(&f, &GvnConfig::full()), Some(5));
    assert_eq!(returned_constant(&f, &GvnConfig::click()), None);
    assert_eq!(returned_constant(&f, &GvnConfig::sccp()), None);
}

#[test]
fn emulation_golden_counts_and_ordering() {
    // A routine that separates every emulation tier: (a) a repeated merge
    // diamond whose φs are structurally congruent (found by AWZ and
    // Click, invisible to SCCP), (b) a constant-folded comparison
    // steering a branch (found by Click and SCCP, invisible to AWZ's
    // fold-free partitioning), and (c) a guard-derived constant that only
    // the full algorithm's predicate inference sees.
    let src = "routine blend(c, x, y) {
        if (c < 3) { a = x; } else { a = y; }
        if (c < 3) { b = x; } else { b = y; }
        d = a - b;
        k = 2 * 3;
        if (k == 6) { e = 10; } else { e = 20; }
        if (x == 5) { g = x + 1; } else { g = 6; }
        return d + e + g;
    }";
    let f = build(src);

    // Golden strength per configuration (unreachable values, constant
    // values, congruence classes). The analysis is deterministic, so any
    // drift here is a behavioural change that needs a reasoned update.
    let golden = [
        ("full", GvnConfig::full(), (1, 19, 14)),
        ("click", GvnConfig::click(), (1, 14, 19)),
        ("awz", GvnConfig::awz(), (0, 11, 23)),
        ("sccp", GvnConfig::sccp(), (1, 14, 20)),
    ];
    for (name, cfg, (unreachable, constants, classes)) in &golden {
        let r = gvn(&f, cfg);
        assert!(r.stats.converged, "{name}");
        let s = r.strength();
        assert_eq!(
            (s.unreachable_values, s.constant_values, s.congruence_classes),
            (*unreachable, *constants, *classes),
            "{name}: golden strength drifted"
        );
    }
    // Monotone ordering along the emulation chain: strictly more
    // constants and strictly coarser partitions as features are added.
    let full = gvn(&f, &GvnConfig::full()).strength();
    let click = gvn(&f, &GvnConfig::click()).strength();
    let awz = gvn(&f, &GvnConfig::awz()).strength();
    let sccp = gvn(&f, &GvnConfig::sccp()).strength();
    assert!(full.constant_values > click.constant_values);
    assert!(click.constant_values > awz.constant_values);
    assert!(click.constant_values >= sccp.constant_values);
    assert!(full.congruence_classes < click.congruence_classes);
    assert!(click.congruence_classes < sccp.congruence_classes);
    assert!(sccp.congruence_classes < awz.congruence_classes);

    // The oracle's refinement relations (§2.9) hold on this routine too:
    // every congruence and constant a weaker configuration finds, the
    // stronger one refines.
    pgvn::oracle::check_lattice(&f, &pgvn::oracle::default_relations())
        .unwrap_or_else(|v| panic!("{} ⊒ {} violated: {}", v.stronger, v.weaker, v.detail));
}

#[test]
fn balanced_equals_optimistic_on_acyclic_code() {
    // On acyclic routines balanced and optimistic agree exactly.
    for src in
        [fixtures::FIGURE6, fixtures::FIGURE13, fixtures::FIGURE14A, fixtures::SIMPLE_INFERENCE]
    {
        let f = build(src);
        let opt = gvn(&f, &GvnConfig::full());
        let bal = gvn(&f, &GvnConfig::full().mode(Mode::Balanced));
        assert_eq!(opt.strength(), bal.strength(), "{src}");
    }
}
