//! Cross-crate switch tests: pipeline folding of constant switches and
//! differential soundness.

use pgvn::ir::{assert_verifies, Function};
use pgvn::prelude::*;

fn build(src: &str) -> Function {
    compile(src, SsaStyle::Minimal).expect("compiles")
}

#[test]
fn pipeline_folds_constant_switch() {
    let src = "routine f(a) {
        k = 1 + 1;
        switch (k) {
            case 1: { r = a; }
            case 2: { r = 5; }
            case 3: { r = a * 2; }
            default: { r = 9; }
        }
        return r;
    }";
    let original = build(src);
    let mut f = original.clone();
    let report = Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut f);
    assert_verifies(&f);
    assert!(report.uce.branches_folded >= 1, "{report:?}");
    for args in [[0], [7], [-3]] {
        let r1 = Interpreter::new(&original).run(&args, &mut HashedOpaques::new(0)).unwrap();
        let r2 = Interpreter::new(&f).run(&args, &mut HashedOpaques::new(0)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, 5);
    }
}

#[test]
fn switch_soundness_against_interpreter() {
    // Differential check over many inputs for a routine mixing switch
    // with inference and φs.
    let src = "routine f(x, y) {
        s = 0;
        switch (x & 3) {
            case 0: { s = y; }
            case 1: { s = y + 1; }
            case 2: { s = y + 2; }
            default: { s = y + 3; }
        }
        if (s == 0) { return 1; }
        return s;
    }";
    let original = build(src);
    let mut optimized = original.clone();
    Pipeline::new(GvnConfig::full()).optimize(&mut optimized);
    for x in -5..6 {
        for y in -4..5 {
            let r1 = Interpreter::new(&original).run(&[x, y], &mut HashedOpaques::new(0)).unwrap();
            let r2 = Interpreter::new(&optimized).run(&[x, y], &mut HashedOpaques::new(0)).unwrap();
            assert_eq!(r1, r2, "({x},{y})");
        }
    }
}
