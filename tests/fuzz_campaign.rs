//! Determinism and regression tests for the sharded fuzz campaign layer.
//!
//! The contract under test (see `docs/ORACLE.md`, "Sharded campaigns"):
//! a campaign's report, shrunk fixtures, and exit code depend only on
//! `(seed, iterations, oracle options)` — never on `--jobs`, the shard
//! chunk size, or thread scheduling. The suite exercises the contract at
//! three levels: the library API (`run_campaign`), shard-report merging
//! (`FuzzReport::merge` proptests), and the `pgvn fuzz` CLI end to end.
//! It also replays the committed shrinker fixtures through the new
//! per-iteration entry points, asserting the shrinker's monotonicity
//! contract on every accepted step.

use pgvn::core::{GvnConfig, GvnContext};
use pgvn::oracle::{
    mix64, run_campaign, shrink_measure, shrink_routine, CampaignOptions, FailureCheck,
    FuzzFailure, FuzzMode, FuzzOptions, FuzzReport, Relation, ShrinkOptions, ValidatorOptions,
};
use proptest::prelude::*;

/// Validator/shrinker settings tuned for test wall-time, mirroring the
/// `quick` helper in the oracle's own unit tests.
fn quick(iterations: u64, mode: FuzzMode) -> FuzzOptions {
    FuzzOptions {
        seed: 2002,
        iterations,
        mode,
        validator: ValidatorOptions { fuel: 1 << 14, vectors: 3, ..Default::default() },
        shrink: Some(ShrinkOptions { max_attempts: 300 }),
        ..Default::default()
    }
}

/// Render the parts of a campaign that the determinism contract covers:
/// every failure's JSONL record and fixture body, plus the stable stats
/// record. Byte-equality of this string is the strongest observable
/// form of "identical report + identical shrunk fixtures".
fn observable(campaign: &pgvn::oracle::CampaignReport, seed: u64) -> String {
    let mut out = String::new();
    for f in &campaign.report.failures {
        out.push_str(&f.to_json());
        out.push('\n');
        out.push_str(&f.fixture());
        out.push('\n');
    }
    out.push_str(&campaign.stats_json(seed));
    out.push('\n');
    out
}

#[test]
fn jobs_1_and_jobs_4_agree_on_an_injected_bug_campaign() {
    let fuzz = FuzzOptions { inject_miscompile: true, ..quick(500, FuzzMode::Validate) };
    let seq =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 1, max_iters_per_shard: 64 });
    // A small chunk forces every worker to interleave across the
    // iteration space rather than one worker swallowing the campaign.
    let par =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 4, max_iters_per_shard: 8 });
    assert!(!seq.report.is_clean(), "inject_miscompile must produce failures");
    assert_eq!(seq.report, par.report);
    assert_eq!(observable(&seq, fuzz.seed), observable(&par, fuzz.seed));
}

#[test]
fn jobs_1_and_jobs_4_agree_under_max_failures_early_stop() {
    let fuzz =
        FuzzOptions { inject_miscompile: true, max_failures: 1, ..quick(500, FuzzMode::Validate) };
    let seq =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 1, max_iters_per_shard: 64 });
    let par =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 4, max_iters_per_shard: 8 });
    assert_eq!(seq.report.failures.len(), 1);
    assert_eq!(seq.report, par.report);
    assert_eq!(observable(&seq, fuzz.seed), observable(&par, fuzz.seed));
}

#[test]
fn jobs_1_and_jobs_4_agree_on_a_clean_campaign() {
    let fuzz = quick(60, FuzzMode::Both);
    let seq =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 1, max_iters_per_shard: 64 });
    let par =
        run_campaign(&CampaignOptions { fuzz: fuzz.clone(), jobs: 4, max_iters_per_shard: 5 });
    assert!(seq.report.is_clean(), "failures: {:#?}", seq.report.failures);
    assert_eq!(seq.report, par.report);
    assert_eq!(observable(&seq, fuzz.seed), observable(&par, fuzz.seed));
}

// ---------------------------------------------------------------------------
// FuzzReport::merge — the shard-combining step of the campaign engine.
// Shards partition the iteration space, so merge only ever sees reports
// whose failure iteration sets are disjoint; the generator below models
// that by assigning each report a residue class ("lane") mod `lanes`.
// ---------------------------------------------------------------------------

fn synthetic_failure(iteration: u64, salt: u64) -> FuzzFailure {
    let kind = ["validate", "lattice", "resilient"][(salt % 3) as usize];
    let src = format!("routine f{iteration}() {{ return {salt}; }}");
    FuzzFailure {
        iteration,
        gen_seed: mix64(iteration ^ salt),
        kind: kind.to_string(),
        detail: format!("synthetic disagreement #{salt}"),
        source: src.clone(),
        shrunk_source: src,
        shrunk_insts: (salt % 17) as usize,
    }
}

fn report_from_seed(seed: u64, lane: u64, lanes: u64) -> FuzzReport {
    let r = |k: u64| mix64(seed ^ mix64(k));
    let mut failures: Vec<FuzzFailure> = (0..r(0) % 6)
        .map(|k| synthetic_failure(lane + (r(k + 1) % 40) * lanes, r(k + 7)))
        .collect();
    failures.sort_by_key(|f| f.iteration);
    failures.dedup_by_key(|f| f.iteration);
    FuzzReport { iterations_run: r(13) % 1_000, total_insts: r(14) % 100_000, failures }
}

fn merged(a: &FuzzReport, b: &FuzzReport) -> FuzzReport {
    let mut out = a.clone();
    out.merge(b.clone());
    out
}

fn proptest_cases() -> u32 {
    std::env::var("PGVN_PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(), ..ProptestConfig::default() })]

    #[test]
    fn fuzz_report_merge_is_commutative(x in 0u64..100_000, y in 0u64..100_000) {
        let (a, b) = (report_from_seed(x, 0, 2), report_from_seed(y, 1, 2));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn fuzz_report_merge_is_associative(
        x in 0u64..100_000,
        y in 0u64..100_000,
        z in 0u64..100_000,
    ) {
        let a = report_from_seed(x, 0, 3);
        let b = report_from_seed(y, 1, 3);
        let c = report_from_seed(z, 2, 3);
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn fuzz_report_merge_has_default_identity(x in 0u64..100_000) {
        let a = report_from_seed(x, 0, 1);
        prop_assert_eq!(merged(&a, &FuzzReport::default()), a.clone());
        prop_assert_eq!(merged(&FuzzReport::default(), &a), a);
    }

    #[test]
    fn fuzz_report_merge_keeps_failures_sorted_by_iteration(
        x in 0u64..100_000,
        y in 0u64..100_000,
    ) {
        let (a, b) = (report_from_seed(x, 0, 2), report_from_seed(y, 1, 2));
        let m = merged(&a, &b);
        prop_assert!(m.failures.windows(2).all(|w| w[0].iteration < w[1].iteration));
        prop_assert_eq!(m.failures.len(), a.failures.len() + b.failures.len());
        prop_assert_eq!(m.iterations_run, a.iterations_run.max(b.iterations_run));
        prop_assert_eq!(m.total_insts, a.total_insts + b.total_insts);
    }
}

// ---------------------------------------------------------------------------
// Shrinker regressions on the committed fixtures, replayed through the
// campaign layer's `FailureCheck` recipes instead of ad-hoc closures.
// ---------------------------------------------------------------------------

fn fixture_source(prefix: &str) -> String {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/oracle");
    for entry in std::fs::read_dir(dir).expect("fixture dir exists") {
        let path = entry.expect("dir entry").path();
        if path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(prefix)) {
            return std::fs::read_to_string(&path).expect("fixture readable");
        }
    }
    panic!("no fixture starting with {prefix:?} under tests/fixtures/oracle/");
}

/// Shrink `routine` under `check`, asserting the `(nodes, const-weight)`
/// measure the shrinker reports is strictly below the best-so-far at
/// every predicate evaluation, and non-increasing end to end.
fn shrink_asserting_monotone(routine: &pgvn::lang::Routine, check: &FailureCheck) {
    let mut ctx = GvnContext::new();
    assert!(check.still_fails(&mut ctx, routine), "fixture no longer exhibits its failure class");

    let original = shrink_measure(routine);
    let mut best = original;
    let shrunk = shrink_routine(routine, &ShrinkOptions { max_attempts: 2_000 }, &mut |cand| {
        let m = shrink_measure(cand);
        assert!(m < best, "candidate measure {m:?} not below accepted measure {best:?}");
        let fails = check.still_fails(&mut ctx, cand);
        if fails {
            best = m;
        }
        fails
    });

    assert!(shrink_measure(&shrunk) <= original, "shrinking must never grow the routine");
    let mut fresh = GvnContext::new();
    assert!(
        check.still_fails(&mut fresh, &shrunk),
        "shrunk routine lost the original failure class"
    );
}

#[test]
fn injected_fixture_shrinks_monotonically_under_failure_check() {
    let src = fixture_source("injected");
    let routine = pgvn::lang::parse(&src).expect("fixture parses");
    let check = FailureCheck::Validate(ValidatorOptions {
        configs: vec![("injected-bug".to_string(), GvnConfig::full().miscompile(true))],
        ..Default::default()
    });
    shrink_asserting_monotone(&routine, &check);
}

#[test]
fn lattice_fixture_shrinks_monotonically_under_failure_check() {
    let src = fixture_source("lattice");
    let routine = pgvn::lang::parse(&src).expect("fixture parses");
    // The deliberately over-strong relation this fixture was minted to
    // violate (full must NOT claim click's reachability facts).
    let check = FailureCheck::Lattice(vec![Relation {
        stronger: ("full".to_string(), GvnConfig::full()),
        weaker: ("click".to_string(), GvnConfig::click()),
        congruences: false,
        constants: false,
        reachability: true,
    }]);
    shrink_asserting_monotone(&routine, &check);
}

#[test]
fn phi_pred_fixture_passes_honest_validation_via_failure_check() {
    let src = fixture_source("phi-pred");
    let routine = pgvn::lang::parse(&src).expect("fixture parses");
    let check = FailureCheck::Validate(ValidatorOptions::default());
    let mut ctx = GvnContext::new();
    assert!(
        !check.still_fails(&mut ctx, &routine),
        "phi-pred fixture must validate cleanly under honest configs"
    );
}

// ---------------------------------------------------------------------------
// CLI end-to-end: `pgvn fuzz --jobs N` must write byte-identical reports
// and fixture directories, and a parallel campaign with the panic fault
// class in the resilient cycle must not leak panic noise to stderr.
// ---------------------------------------------------------------------------

fn pgvn() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_pgvn"))
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pgvn-fuzz-campaign-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn read_fixture_dir(dir: &std::path::Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("fixture dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, std::fs::read_to_string(&path).expect("fixture readable")));
    }
    out.sort();
    out
}

#[test]
fn cli_reports_and_fixtures_are_identical_across_jobs() {
    let mut outputs = Vec::new();
    for (label, jobs) in [("seq", &["--jobs", "1"][..]), ("par", &["--jobs", "4"][..])] {
        let dir = fresh_dir(label);
        let report = dir.join("report.jsonl");
        let fixtures = dir.join("fixtures");
        let out = pgvn()
            .args(["fuzz", "--seed", "2002", "--iters", "40", "--mode", "validate"])
            .args(["--inject-bug", "--max-failures", "1", "--max-iters-per-shard", "4"])
            .args(["--report", report.to_str().unwrap()])
            .args(["--fixture-dir", fixtures.to_str().unwrap()])
            .args(jobs)
            .output()
            .expect("spawns");
        assert!(!out.status.success(), "injected bug must fail the campaign");
        outputs.push((
            std::fs::read_to_string(&report).expect("report written"),
            read_fixture_dir(&fixtures),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        ));
    }
    let (seq, par) = (&outputs[0], &outputs[1]);
    assert_eq!(seq.0, par.0, "JSONL reports must be byte-identical across --jobs");
    assert_eq!(seq.1, par.1, "fixture directories must be identical across --jobs");
    assert_eq!(seq.2, par.2, "stdout summary must be identical across --jobs");
}

#[test]
fn cli_parallel_campaign_is_quiet_about_injected_panics() {
    // The resilient oracle cycles a Panic fault class through every 5th
    // iteration; the campaign installs a silenced hook before spawning
    // workers, so a clean parallel run must not leak unwind noise.
    let out = pgvn()
        .args(["fuzz", "--seed", "2002", "--iters", "25", "--jobs", "4"])
        .output()
        .expect("spawns");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(!stderr.contains("panicked at"), "panic noise leaked: {stderr}");
    assert!(!stderr.contains("stack backtrace"), "backtrace leaked: {stderr}");
}
