//! Quickstart: compile a routine, analyze it, optimize it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pgvn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A routine with a redundancy ((a+b) vs (b+a)), a dead branch, and a
    // value-inference opportunity.
    let src = "routine demo(a, b) {
        x = a + b;
        y = b + a;
        if (3 > 5) { x = 99; }
        if (a == 0) { y = y + a; }
        return x - y;
    }";

    // 1. Compile to SSA.
    let mut func = compile(src, SsaStyle::Pruned)?;
    println!("== before ==\n{func}");

    // 2. Run the predicated sparse GVN analysis.
    let results = gvn(&func, &GvnConfig::full());
    println!(
        "analysis: {} passes, {} congruence classes, converged: {}",
        results.stats.passes,
        results.num_congruence_classes(),
        results.stats.converged
    );

    // The return value is provably the constant 0.
    let ret = func
        .blocks()
        .filter_map(|b| func.terminator(b))
        .find_map(|t| match func.kind(t) {
            pgvn::ir::InstKind::Return(v) => Some(*v),
            _ => None,
        })
        .expect("routine returns");
    println!("return value is constant: {:?}", results.constant_value(ret));

    // 3. Apply the optimization pipeline.
    let report = Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut func);
    println!(
        "pipeline: {} constants propagated, {} redundancies removed, {} dead instructions",
        report.constants_propagated, report.redundancies_eliminated, report.dead_removed
    );
    println!("\n== after ==\n{func}");

    // 4. The optimized routine still computes the same thing.
    let r = Interpreter::new(&func).run(&[7, -3], &mut HashedOpaques::new(0))?;
    assert_eq!(r, 0);
    println!("demo(7, -3) = {r}");
    Ok(())
}
