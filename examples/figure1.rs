//! The paper's headline example (Figure 1): routine `R` always returns 1,
//! and only the *unified* algorithm — optimistic value numbering together
//! with unreachable code elimination, global reassociation, predicate and
//! value inference, and φ-predication — can prove it.
//!
//! This example reproduces the claim and then shows the ablation: turning
//! off any single analysis breaks the inference chain.
//!
//! ```text
//! cargo run --example figure1
//! ```

use pgvn::ir::InstKind;
use pgvn::prelude::*;

fn returned_constant(func: &pgvn::ir::Function, cfg: &GvnConfig) -> Option<i64> {
    let results = gvn(func, cfg);
    func.blocks()
        .filter(|&b| results.is_block_reachable(b))
        .filter_map(|b| func.terminator(b))
        .find_map(|t| match func.kind(t) {
            InstKind::Return(v) => Some(results.constant_value(*v)),
            _ => None,
        })
        .flatten()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = pgvn::lang::fixtures::FIGURE1;
    println!("{src}\n");
    let func = compile(src, SsaStyle::Minimal)?;

    // Dynamic sanity check: R really always returns 1.
    for args in [[0, 0, 0], [9, 9, 100], [5, 5, 9], [-7, 3, 2]] {
        let r = Interpreter::new(&func).run(&args, &mut HashedOpaques::new(0))?;
        assert_eq!(r, 1, "R{args:?}");
    }
    println!("dynamic check: R always returns 1  ✓\n");

    // The full algorithm proves it statically.
    let full = returned_constant(&func, &GvnConfig::full());
    println!("full unified algorithm proves: return {full:?}");
    assert_eq!(full, Some(1));

    // Ablations: each disabled analysis breaks the chain (paper §1.3:
    // "If predicate inference, value inference or φ-predication are not
    // performed, it will break the chain of inferences…").
    println!("\nablation (None = cannot prove the constant):");
    let mut rows: Vec<(&str, GvnConfig)> = vec![
        ("balanced instead of optimistic", GvnConfig::full().mode(Mode::Balanced)),
        ("click emulation", GvnConfig::click()),
        ("wegman–zadeck sccp emulation", GvnConfig::sccp()),
        ("awz/simpson emulation", GvnConfig::awz()),
    ];
    let mut c = GvnConfig::full();
    c.value_inference = false;
    rows.push(("without value inference", c));
    let mut c = GvnConfig::full();
    c.predicate_inference = false;
    rows.push(("without predicate inference", c));
    let mut c = GvnConfig::full();
    c.phi_predication = false;
    rows.push(("without φ-predication", c));
    let mut c = GvnConfig::full();
    c.global_reassociation = false;
    rows.push(("without global reassociation", c));
    let mut c = GvnConfig::full();
    c.unreachable_code_elim = false;
    rows.push(("without unreachable code elim", c));

    for (name, cfg) in rows {
        let got = returned_constant(&func, &cfg);
        println!("  {name:<34} -> {got:?}");
        assert_eq!(got, None, "{name} should not prove the constant");
    }

    // And the optimizer collapses R to `return 1`.
    let mut optimized = func.clone();
    let report = Pipeline::new(GvnConfig::full()).rounds(2).optimize(&mut optimized);
    println!(
        "\npipeline: {} blocks removed, {} constants propagated, {} dead instructions",
        report.uce.blocks_removed, report.constants_propagated, report.dead_removed
    );
    println!("\n== optimized ==\n{optimized}");
    Ok(())
}
