//! The compile-time / optimization-strength tradeoff (paper §1.3): the
//! same driver runs as an optimistic, balanced or pessimistic value
//! numberer, with each unified analysis individually switchable —
//! "existing algorithms do not offer this flexibility, so they require
//! the compiler writer to choose between minimizing compile time,
//! maximizing optimization strength or implementing multiple algorithms."
//!
//! Prints one row per configuration over a small generated suite:
//! analysis time, and the three strength measures.
//!
//! ```text
//! cargo run --release --example tradeoffs
//! ```

use pgvn::prelude::*;
use pgvn::workload::{spec_suite, SuiteConfig};
use std::time::Instant;

fn main() {
    let suite = spec_suite(SuiteConfig { scale: 0.02, ..Default::default() });
    let funcs: Vec<_> = suite.iter().flat_map(|b| b.routines().collect::<Vec<_>>()).collect();
    println!("suite: {} routines\n", funcs.len());

    let mut rows: Vec<(&str, GvnConfig)> = vec![
        ("full optimistic (strongest)", GvnConfig::full()),
        ("full balanced", GvnConfig::full().mode(Mode::Balanced)),
        ("full pessimistic (fastest)", GvnConfig::full().mode(Mode::Pessimistic)),
        ("complete variant", GvnConfig::full().variant(Variant::Complete)),
        ("+ φ-distribution (§6 extension)", GvnConfig::extended()),
        ("dense (sparseness off)", GvnConfig::full().sparse(false)),
        ("basic (click emulation)", GvnConfig::click()),
        ("sccp emulation", GvnConfig::sccp()),
        ("awz/simpson emulation", GvnConfig::awz()),
    ];
    let mut c = GvnConfig::full();
    c.value_inference_constants_only = true;
    rows.push(("value inference: constants only", c));

    println!(
        "{:<34} {:>9} {:>12} {:>10} {:>9}",
        "configuration", "time(ms)", "unreachable", "constants", "classes"
    );
    for (name, cfg) in rows {
        let t0 = Instant::now();
        let mut unreachable = 0usize;
        let mut constants = 0usize;
        let mut classes = 0usize;
        for f in &funcs {
            let s = gvn(f, &cfg).strength();
            unreachable += s.unreachable_values;
            constants += s.constant_values;
            classes += s.congruence_classes;
        }
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        println!("{name:<34} {elapsed:>9.2} {unreachable:>12} {constants:>10} {classes:>9}");
    }
    println!("\n(more unreachable/constants is stronger; fewer classes is stronger)");
}
