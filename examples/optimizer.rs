//! Drive the GVN-based optimizer over a generated "benchmark" routine and
//! report what each stage accomplished — the shape of a real compiler's
//! middle end built on this library.
//!
//! ```text
//! cargo run --example optimizer [seed]
//! ```

use pgvn::prelude::*;
use pgvn::transform::{
    eliminate_dead_code, eliminate_redundancies, eliminate_unreachable, forward_copies,
    propagate_constants,
};
use pgvn::workload::{generate_function, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let cfg = GenConfig { seed, target_stmts: 60, ..Default::default() };
    let mut func = generate_function("hot_routine", &cfg, SsaStyle::Pruned);
    let original = func.clone();
    println!(
        "generated routine: {} blocks, {} instructions (seed {seed})",
        func.num_blocks(),
        func.num_insts()
    );

    // Analyze.
    let results = gvn(&func, &GvnConfig::full());
    let strength = results.strength();
    println!(
        "analysis: {} passes; {} unreachable values, {} constant values, {} classes",
        results.stats.passes,
        strength.unreachable_values,
        strength.constant_values,
        strength.congruence_classes
    );

    // Apply each consumer transform individually, reporting as we go.
    let uce = eliminate_unreachable(&mut func, &results);
    println!(
        "unreachable code elim: {} branches folded, {} blocks removed, {} φs simplified",
        uce.branches_folded, uce.blocks_removed, uce.phis_simplified
    );
    let consts = propagate_constants(&mut func, &results);
    println!("constant propagation:  {consts} instructions rewritten");
    let redundant = eliminate_redundancies(&mut func, &results);
    println!("redundancy elim:       {redundant} instructions now copies");
    let forwarded = forward_copies(&mut func);
    println!("copy forwarding:       {forwarded} operands forwarded");
    let dead = eliminate_dead_code(&mut func);
    println!("dead code elim:        {dead} instructions removed");

    pgvn::ir::verify(&func)?;
    println!(
        "\nresult: {} blocks, {} instructions ({}% of original size)",
        func.num_blocks(),
        func.num_insts(),
        100 * func.num_insts() / original.num_insts().max(1)
    );

    // Differential check against the original on a few inputs.
    for args in [[0i64, 0, 0], [1, 2, 3], [-9, 4, 100], [7, 7, 7]] {
        let mut o1 = HashedOpaques::new(seed);
        let mut o2 = HashedOpaques::new(seed);
        let r1 = Interpreter::new(&original).fuel(10_000_000).run(&args, &mut o1)?;
        let r2 = Interpreter::new(&func).fuel(10_000_000).run(&args, &mut o2)?;
        assert_eq!(r1, r2, "optimization changed behaviour on {args:?}");
        println!("hot_routine{args:?} = {r1}  (identical before/after)");
    }
    Ok(())
}
